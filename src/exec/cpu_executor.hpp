#pragma once
// CPU execution of a stencil under a parameter setting's decomposition.
//
// The executor walks the exact iteration space the generated CUDA kernel
// would: thread blocks of TBx*TBy*TBz threads, per-thread cyclic/block
// merging, and 2.5-D streaming over SB-long tiles of the streaming
// dimension. Every interior point is computed exactly once with the same
// per-point update rule as the naive reference kernel, so for any valid
// setting the result must match the reference bit-for-bit — the correctness
// property the paper's code generator is trusted to uphold.

#include <vector>

#include "space/setting.hpp"
#include "stencil/reference_kernel.hpp"

namespace cstuner::exec {

struct ExecOptions {
  int n_threads = 1;  ///< host worker threads over thread blocks
};

/// Runs one sweep of `spec` under `setting`'s decomposition.
void run_tiled(const stencil::StencilSpec& spec,
               const space::Setting& setting,
               const std::vector<stencil::Grid3>& inputs,
               std::vector<stencil::Grid3>& outputs,
               const ExecOptions& options = {});

/// Convenience correctness check: runs the reference and the tiled executor
/// on fresh grids and returns the max absolute difference over all outputs.
double max_divergence_from_reference(const stencil::StencilSpec& spec,
                                     const space::Setting& setting);

/// `steps` sequential tiled sweeps with the same ping-pong semantics as
/// stencil::run_reference_steps — the execution path of the temporal-
/// blocking extension (single-grid stencils only).
void run_tiled_steps(const stencil::StencilSpec& spec,
                     const space::Setting& setting,
                     stencil::GridSet& grids, int steps,
                     const ExecOptions& options = {});

/// Temporal correctness oracle: tiled stepping vs reference stepping.
double max_divergence_from_reference_steps(const stencil::StencilSpec& spec,
                                           const space::Setting& setting,
                                           int steps);

}  // namespace cstuner::exec
