#include "common/error.hpp"

#include <sstream>

namespace cstuner {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace cstuner
