#pragma once
// Bump-pointer scratch arena for per-worker batch buffers. One contiguous
// block is grown to the high-water mark on first use and then reused for
// the rest of the process: reset() just rewinds the cursor, so steady-state
// batch evaluation performs zero heap allocations per setting
// (docs/performance.md). Only trivially-destructible element types are
// allowed — nothing is destroyed on reset.

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

namespace cstuner {

class Arena {
 public:
  /// Uninitialized scratch span of `count` elements, aligned for T.
  /// Invalidated by the next grow; allocate every span for a batch before
  /// writing to any of them, or reserve() the total up front.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    static_assert(alignof(T) <= kAlign, "over-aligned type");
    const std::size_t bytes = count * sizeof(T);
    const std::size_t at = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    if (at + bytes > capacity()) grow(at + bytes);
    used_ = at + bytes;
    return {reinterpret_cast<T*>(data() + at), count};
  }

  /// Ensures at least `bytes` of capacity (one allocation, done early).
  void reserve(std::size_t bytes) {
    if (bytes > capacity()) grow(bytes);
  }

  /// Rewinds the cursor; capacity (and previous spans' memory) is reused.
  void reset() { used_ = 0; }

  std::size_t capacity() const { return storage_.size() * kAlign; }

 private:
  static constexpr std::size_t kAlign = 64;  // cache-line alignment

  struct alignas(kAlign) Chunk {
    unsigned char bytes[kAlign];
  };

  unsigned char* data() { return storage_.data()->bytes; }

  void grow(std::size_t needed) {
    std::size_t cap = capacity() == 0 ? 4096 : capacity();
    while (cap < needed) cap *= 2;
    storage_.resize(cap / kAlign);
  }

  // Vector of aligned chunks => data() is 64-byte aligned without the
  // aligned-new machinery.
  std::vector<Chunk> storage_;
  std::size_t used_ = 0;
};

}  // namespace cstuner
