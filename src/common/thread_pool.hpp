#pragma once
// Persistent worker-thread pool shared by the evaluation engine and the
// pre-processing stages (docs/threading.md).
//
// Two entry points:
//   submit(task)        — enqueue one task, returns a future for completion
//                         (exceptions travel through the future).
//   parallel_for(n, f)  — run f(0..n-1) across the workers AND the calling
//                         thread; indices are claimed from a shared atomic
//                         counter, so per-index overhead is one fetch_add,
//                         not one queue round-trip. Blocks until all indices
//                         finished; the first exception thrown by any index
//                         is rethrown in the caller.
//
// The caller always participates in parallel_for, so a pool with zero
// workers degrades to plain serial execution (and nested/concurrent
// parallel_for calls from several threads — e.g. minimpi ranks — can never
// deadlock: every caller makes progress on its own job even when all
// workers are busy elsewhere).

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cstuner {

class ThreadPool {
 public:
  /// Spawns `workers` persistent threads. 0 is valid: every parallel_for
  /// then runs inline on the caller (the deterministic serial reference).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return threads_.size(); }

  /// Enqueues one task; the returned future delivers completion and any
  /// exception the task threw.
  std::future<void> submit(std::function<void()> task);

  /// Runs body(i) for every i in [0, n). The caller claims indices alongside
  /// the workers; returns when all n indices completed. Rethrows the first
  /// exception raised by any body invocation (remaining indices still run,
  /// so sibling results stay complete).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Tasks sitting in the queue right now: submitted closures plus
  /// parallel_for helper jobs no worker has picked up yet. Instantaneous —
  /// an admission controller reads it as a load signal, not an invariant.
  std::size_t queue_depth() const;

  /// Tasks currently executing on pool workers. Caller participation in
  /// parallel_for is not counted (the caller is not a pool resource).
  std::size_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }

  /// High-water marks of queue_depth()/inflight() since construction or the
  /// last reset_peaks(); bench_parallel_scaling reports these per worker
  /// count.
  std::size_t peak_queue_depth() const;
  std::size_t peak_inflight() const {
    return peak_inflight_.load(std::memory_order_relaxed);
  }
  void reset_peaks();

  /// Process-wide shared pool, sized from CSTUNER_THREADS (worker count;
  /// 0 forces serial) or hardware_concurrency - 1, capped at 15 workers.
  /// Created on first use.
  static ThreadPool& global();

 private:
  struct Job;

  static void run_job(Job& job);
  void worker_loop();
  /// Records the current queue size into the high-water mark; call with
  /// queue_mutex_ held after pushing.
  void note_queue_depth_locked();

  std::vector<std::thread> threads_;
  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::size_t peak_queue_depth_ = 0;  // guarded by queue_mutex_
  std::atomic<std::size_t> inflight_{0};
  std::atomic<std::size_t> peak_inflight_{0};
};

}  // namespace cstuner
