#pragma once
// Aligned-text and CSV table emission for the benchmark harnesses.
//
// Every experiment binary prints the series the paper reports; TextTable
// renders them as aligned console output and can also dump CSV for plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace cstuner {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with the given precision.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_pct(double ratio, int precision = 1);

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cstuner
