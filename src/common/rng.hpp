#pragma once
// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the framework (search-space sampling, genetic
// operators, simulated measurement noise) draw from Xoshiro256** seeded via
// SplitMix64, so every experiment is exactly reproducible from its seed.

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

namespace cstuner {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state and to derive independent child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p.
  bool bernoulli(double p);

  /// Uniformly chosen index into a container of the given size (size > 0).
  std::size_t index(std::size_t size);

  /// Derive an independent child generator (for per-rank / per-run streams).
  Rng split();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(bounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Stable 64-bit hash mixing, for deriving seeds from structured keys.
std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v);

/// FNV-1a over a byte range; convenient for hashing strings into seeds.
std::uint64_t fnv1a(const void* data, std::size_t n);

}  // namespace cstuner
