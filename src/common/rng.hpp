#pragma once
// Deterministic, splittable pseudo-random number generation.
//
// All stochastic components of the framework (search-space sampling, genetic
// operators, simulated measurement noise) draw from Xoshiro256** seeded via
// SplitMix64, so every experiment is exactly reproducible from its seed.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace cstuner {

/// SplitMix64: used to expand a single 64-bit seed into a full generator
/// state and to derive independent child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit generator.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  // Construction and the single-normal draw are inline: the measurement
  // noise path seeds a fresh generator and draws once per run, several
  // million times per tune (docs/performance.md).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& word : s_) word = sm.next();
    // Guard against the (astronomically unlikely) all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }
  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller. The pair's second value is cached as
  /// (r, theta) and its sine evaluated only if a second draw is requested,
  /// so single-draw consumers (measurement noise) skip the std::sin — with
  /// values bit-identical to the eager implementation either way.
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p.
  bool bernoulli(double p);

  /// Uniformly chosen index into a container of the given size (size > 0).
  std::size_t index(std::size_t size);

  /// Derive an independent child generator (for per-rank / per-run streams).
  Rng split();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(bounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> s_{};
  bool has_cached_normal_ = false;
  double cached_r_ = 0.0;      ///< Box–Muller radius of the pending pair
  double cached_theta_ = 0.0;  ///< Box–Muller angle of the pending pair
};

inline double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_r_ * std::sin(cached_theta_);
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_r_ = r;
  cached_theta_ = theta;
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

/// Stable 64-bit hash mixing, for deriving seeds from structured keys.
/// Inline: Setting::hash chains 19 of these on the evaluator hot path.
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  // Boost-style mix adapted to 64 bits.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  SplitMix64 sm(h);
  return sm.next();
}

/// FNV-1a over a byte range; convenient for hashing strings into seeds.
inline std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace cstuner
