#include "common/rng.hpp"

#include <cmath>

namespace cstuner {

// The seeding constructor, next(), uniform() and normal() live in the
// header: the measurement-noise path constructs a generator and draws one
// normal per run, so those must inline into the caller (docs/performance.md).
// The remaining entry points are cold enough to stay out of line.

std::uint64_t Rng::bounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(bounded(span));
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t size) {
  return static_cast<std::size_t>(bounded(size));
}

Rng Rng::split() { return Rng(next() ^ 0xa5a5a5a55a5a5a5aULL); }

}  // namespace cstuner
