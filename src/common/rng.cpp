#include "common/rng.hpp"

#include <cmath>

namespace cstuner {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::bounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(bounded(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::size_t Rng::index(std::size_t size) {
  return static_cast<std::size_t>(bounded(size));
}

Rng Rng::split() { return Rng(next() ^ 0xa5a5a5a55a5a5a5aULL); }

std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  // Boost-style mix adapted to 64 bits.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  SplitMix64 sm(h);
  return sm.next();
}

std::uint64_t fnv1a(const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace cstuner
