#pragma once
// Minimal JSON support for machine-readable tuning reports and crash-safe
// checkpoints: a streaming writer (objects, arrays, strings, numbers, bools)
// and a small recursive-descent parser that feeds checkpoint/trace loading.
//
// Round-tripping: value(double) emits the shortest representation that
// parses back to the identical bits (std::to_chars), so checkpoints and
// traces survive a write/parse cycle without drifting by an ULP. Non-finite
// doubles are written as null (JSON has no Inf/NaN); loaders that need an
// explicit infinity encode status separately.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace cstuner {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Convenience: key + scalar value.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// Key + pre-serialized JSON fragment, spliced in verbatim (for payloads
  /// composed elsewhere, e.g. a snapshot embedding a dataset blob).
  JsonWriter& raw_field(const std::string& name, const std::string& json);

  std::string str() const { return os_.str(); }

  static std::string escape(const std::string& s);

 private:
  void comma();

  std::ostringstream os_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

/// Parsed JSON document node. Numbers keep their raw token so integer
/// values up to 64 bits round-trip exactly (a double would truncate them).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Typed accessors; throw cstuner::Error on type mismatch.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_i64() const;
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup; throws cstuner::Error when absent.
  const JsonValue& at(const std::string& key) const;

  const std::vector<std::pair<std::string, JsonValue>>& members() const;

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< raw number token, or decoded string
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Thrown when a document exceeds caller-supplied JsonLimits. Distinct from
/// the generic parse Error so the serving layer can answer hostile input
/// with a typed rejected{reason:"oversized"} instead of bad_request.
class JsonLimitError : public Error {
 public:
  using Error::Error;
};

/// Resource bounds for parsing untrusted input. The defaults match the
/// parser's built-in recursion guard; a zero max_nodes means unlimited.
struct JsonLimits {
  int max_depth = 64;
  std::size_t max_nodes = 0;  ///< total values (scalars + containers)
};

/// Parses one JSON document (throws cstuner::Error on malformed input).
JsonValue json_parse(std::string_view text);

/// Parses with explicit resource bounds; throws JsonLimitError when the
/// document exceeds them. Use this for every network-facing parse.
JsonValue json_parse(std::string_view text, const JsonLimits& limits);

}  // namespace cstuner
