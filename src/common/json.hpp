#pragma once
// Minimal JSON emission (writer only) for machine-readable tuning reports.
// Deliberately tiny: objects, arrays, strings, numbers, bools — enough for
// the CLI's --json output and the trace exports.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace cstuner {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Key inside an object; must be followed by a value or container.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Convenience: key + scalar value.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  std::string str() const { return os_.str(); }

  static std::string escape(const std::string& s);

 private:
  void comma();

  std::ostringstream os_;
  std::vector<bool> first_in_scope_;
  bool pending_key_ = false;
};

}  // namespace cstuner
