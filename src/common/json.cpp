#include "common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "common/error.hpp"

namespace cstuner {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; no comma
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) os_ << ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CSTUNER_CHECK(!first_in_scope_.empty());
  first_in_scope_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CSTUNER_CHECK(!first_in_scope_.empty());
  first_in_scope_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  os_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (std::isfinite(v)) {
    // Shortest representation that parses back to the identical bits.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    os_.write(buf, res.ptr - buf);
  } else {
    os_ << "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::raw_field(const std::string& name,
                                  const std::string& json) {
  key(name);
  comma();  // consumes pending_key_
  os_ << json;
  return *this;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

[[noreturn]] void parse_fail(std::size_t pos, const std::string& what) {
  throw Error("JSON parse error at offset " + std::to_string(pos) + ": " +
              what);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw Error("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ == Type::kNull) {
    // value(double) writes non-finite values as null; read them back as the
    // infinity the tuner uses for "no measurement".
    return std::numeric_limits<double>::infinity();
  }
  if (type_ != Type::kNumber) throw Error("JSON value is not a number");
  return std::strtod(scalar_.c_str(), nullptr);
}

std::int64_t JsonValue::as_i64() const {
  if (type_ != Type::kNumber) throw Error("JSON value is not a number");
  return std::strtoll(scalar_.c_str(), nullptr, 10);
}

std::uint64_t JsonValue::as_u64() const {
  if (type_ != Type::kNumber) throw Error("JSON value is not a number");
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) throw Error("JSON value is not a string");
  return scalar_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) throw Error("JSON value is not an array");
  return array_;
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (v == nullptr) throw Error("JSON object has no member \"" + key + "\"");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  if (type_ != Type::kObject) throw Error("JSON value is not an object");
  return object_;
}

/// Recursive-descent parser over a string_view. Depth-limited so malformed
/// (or adversarial) deeply nested input fails cleanly instead of smashing
/// the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text,
                      const JsonLimits& limits = JsonLimits{})
      : text_(text), limits_(limits) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) parse_fail(pos_, "trailing content");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) parse_fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      parse_fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > limits_.max_depth) {
      throw JsonLimitError("JSON nesting exceeds depth limit " +
                           std::to_string(limits_.max_depth));
    }
    if (limits_.max_nodes != 0 && ++nodes_ > limits_.max_nodes) {
      throw JsonLimitError("JSON document exceeds node limit " +
                           std::to_string(limits_.max_nodes));
    }
    skip_ws();
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      v.type_ = JsonValue::Type::kObject;
      ++pos_;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      for (;;) {
        skip_ws();
        std::string name = parse_string_token();
        skip_ws();
        expect(':');
        v.object_.emplace_back(std::move(name), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return v;
      }
    }
    if (c == '[') {
      v.type_ = JsonValue::Type::kArray;
      ++pos_;
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      for (;;) {
        v.array_.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return v;
      }
    }
    if (c == '"') {
      v.type_ = JsonValue::Type::kString;
      v.scalar_ = parse_string_token();
      return v;
    }
    if (consume_literal("true")) {
      v.type_ = JsonValue::Type::kBool;
      v.bool_ = true;
      return v;
    }
    if (consume_literal("false")) {
      v.type_ = JsonValue::Type::kBool;
      v.bool_ = false;
      return v;
    }
    if (consume_literal("null")) {
      v.type_ = JsonValue::Type::kNull;
      return v;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      v.type_ = JsonValue::Type::kNumber;
      const std::size_t start = pos_;
      if (peek() == '-') ++pos_;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
              text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
        parse_fail(start, "malformed number");
      }
      v.scalar_.assign(text_.substr(start, pos_ - start));
      return v;
    }
    parse_fail(pos_, "unexpected character");
  }

  std::string parse_string_token() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) parse_fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) parse_fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) parse_fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              parse_fail(pos_ - 1, "bad \\u escape digit");
            }
          }
          // The writer only emits \u00xx for control bytes; decode the
          // low byte and accept (rare) higher codepoints as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          parse_fail(pos_ - 1, "unknown escape");
      }
    }
  }

  std::string_view text_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
  std::size_t nodes_ = 0;
};

JsonValue json_parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

JsonValue json_parse(std::string_view text, const JsonLimits& limits) {
  return JsonParser(text, limits).parse_document();
}

}  // namespace cstuner
