#include "common/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace cstuner {

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; no comma
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) os_ << ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  os_ << '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  CSTUNER_CHECK(!first_in_scope_.empty());
  first_in_scope_.pop_back();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  os_ << '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  CSTUNER_CHECK(!first_in_scope_.empty());
  first_in_scope_.pop_back();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  comma();
  os_ << '"' << escape(name) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  os_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (std::isfinite(v)) {
    os_ << v;
  } else {
    os_ << "null";  // JSON has no Inf/NaN
  }
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  os_ << (v ? "true" : "false");
  return *this;
}

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace cstuner
