#pragma once
// Minimal leveled logger. Single global sink (stderr by default); thread-safe.

#include <mutex>
#include <sstream>
#include <string>

namespace cstuner {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  void write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level) : level_(level) {}
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace cstuner

#define CSTUNER_LOG(lvl)                                               \
  if (static_cast<int>(lvl) <                                          \
      static_cast<int>(::cstuner::Logger::instance().level())) {       \
  } else                                                               \
    ::cstuner::detail::LogLine(lvl)

#define CSTUNER_DEBUG CSTUNER_LOG(::cstuner::LogLevel::kDebug)
#define CSTUNER_INFO CSTUNER_LOG(::cstuner::LogLevel::kInfo)
#define CSTUNER_WARN CSTUNER_LOG(::cstuner::LogLevel::kWarn)
#define CSTUNER_ERROR CSTUNER_LOG(::cstuner::LogLevel::kError)
