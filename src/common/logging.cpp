#include "common/logging.hpp"

#include <iostream>

namespace cstuner {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& message) {
  static const char* kNames[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  std::lock_guard<std::mutex> lock(mutex_);
  std::cerr << "[cstuner:" << kNames[static_cast<int>(level)] << "] "
            << message << '\n';
}

namespace detail {

LogLine::~LogLine() { Logger::instance().write(level_, os_.str()); }

}  // namespace detail

}  // namespace cstuner
