#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

namespace cstuner {

// Shared state of one parallel_for call. Indices are claimed via `next`;
// `done` counts finished bodies so the owner knows when every claimed index
// (including ones run by pool workers) has completed.
struct ThreadPool::Job {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;  // first failure, guarded by mutex
};

void ThreadPool::run_job(Job& job) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    try {
      (*job.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.mutex);
      if (!job.error) job.error = std::current_exception();
    }
    // acq_rel: the final increment's reader (the waiting owner) must see
    // every body's writes, not just the last one's.
    if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
      std::lock_guard<std::mutex> lock(job.mutex);
      job.cv.notify_all();
    }
  }
}

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const std::size_t now = inflight_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::size_t peak = peak_inflight_.load(std::memory_order_relaxed);
    while (now > peak && !peak_inflight_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    task();
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

std::size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

std::size_t ThreadPool::peak_queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return peak_queue_depth_;
}

void ThreadPool::reset_peaks() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    peak_queue_depth_ = 0;
  }
  peak_inflight_.store(inflight_.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
}

void ThreadPool::note_queue_depth_locked() {
  if (queue_.size() > peak_queue_depth_) peak_queue_depth_ = queue_.size();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  auto future = packaged->get_future();
  if (threads_.empty()) {
    (*packaged)();  // no workers: run inline, future still carries the result
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back([packaged] { (*packaged)(); });
    note_queue_depth_locked();
  }
  queue_cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->body = &body;

  // One helper task per worker (capped by n-1: the caller takes indices
  // too). Helpers that arrive after the job drained exit immediately.
  const std::size_t helpers = std::min(worker_count(), n - 1);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    for (std::size_t i = 0; i < helpers; ++i) {
      queue_.push_back([job] { run_job(*job); });
    }
    note_queue_depth_locked();
  }
  queue_cv_.notify_all();

  run_job(*job);
  std::unique_lock<std::mutex> lock(job->mutex);
  job->cv.wait(lock, [&] {
    return job->done.load(std::memory_order_acquire) >= job->n;
  });
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("CSTUNER_THREADS")) {
      // Clamp so garbage ("abc" -> 0) and negative values (strtoull wraps
      // them to huge numbers) cannot ask for absurd thread counts.
      return std::min<std::size_t>(
          static_cast<std::size_t>(std::strtoull(env, nullptr, 10)), 64);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(
        std::min(15u, hw > 1 ? hw - 1 : 0u));
  }());
  return pool;
}

}  // namespace cstuner
