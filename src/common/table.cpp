#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace cstuner {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CSTUNER_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  CSTUNER_CHECK_MSG(row.size() == header_.size(),
                    "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::fmt_pct(double ratio, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << (ratio * 100.0) << '%';
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace cstuner
