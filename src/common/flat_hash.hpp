#pragma once
// Flat open-addressing hash map for 64-bit keys (linear probing, power-of-2
// capacity). Built for the evaluator's result cache: keys are already
// well-mixed Setting hashes, entries are small PODs, there is no erase, and
// the expected population (the tuning universe) is known up front — so one
// reserve() at tune start makes the hot path a probe over a contiguous
// array with no per-insert allocation, in contrast to the node-per-entry
// std::unordered_map it replaces.
//
// Key 0 is reserved as the empty-slot sentinel; the (astronomically rare)
// real zero key is carried in a dedicated side slot so correctness does not
// depend on hash values never being zero.

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace cstuner {

template <typename Value>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  /// Number of stored entries.
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return slots_.size(); }

  /// Pre-sizes the table for `expected` entries so inserts up to that count
  /// never rehash. Keeps existing entries.
  void reserve(std::size_t expected) {
    std::size_t want = kMinCapacity;
    // Grow until `expected` fits under the load-factor ceiling.
    while (want * kMaxLoadNum / kMaxLoadDen < expected + 1) want *= 2;
    if (want > slots_.size()) rehash(want);
  }

  /// Pointer to the value for `key`, or nullptr when absent.
  Value* find(std::uint64_t key) {
    if (key == 0) return has_zero_ ? &zero_slot_.value : nullptr;
    if (slots_.empty()) return nullptr;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = key & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == 0) return nullptr;
    }
  }
  const Value* find(std::uint64_t key) const {
    return const_cast<FlatHashMap*>(this)->find(key);
  }

  /// Inserts (key, value) unless the key is present; first writer wins.
  /// Returns {slot value, inserted}.
  std::pair<Value*, bool> try_emplace(std::uint64_t key, const Value& value) {
    if (key == 0) {
      if (!has_zero_) {
        zero_slot_.value = value;
        has_zero_ = true;
        ++size_;
        return {&zero_slot_.value, true};
      }
      return {&zero_slot_.value, false};
    }
    if (slots_.empty() ||
        (size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = key & mask;; i = (i + 1) & mask) {
      Slot& slot = slots_[i];
      if (slot.key == key) return {&slot.value, false};
      if (slot.key == 0) {
        slot.key = key;
        slot.value = value;
        ++size_;
        return {&slot.value, true};
      }
    }
  }

  /// Drops every entry; keeps the allocated capacity.
  void clear() {
    for (auto& slot : slots_) slot.key = 0;
    has_zero_ = false;
    size_ = 0;
  }

  /// Calls fn(key, value) for every entry (unspecified order).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (has_zero_) fn(std::uint64_t{0}, zero_slot_.value);
    for (const auto& slot : slots_) {
      if (slot.key != 0) fn(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Value value{};
  };

  static constexpr std::size_t kMinCapacity = 16;
  // 7/8 max load: linear probing stays short while wasting little memory.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 8;

  void rehash(std::size_t new_capacity) {
    CSTUNER_CHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    const std::size_t mask = new_capacity - 1;
    for (const auto& slot : old) {
      if (slot.key == 0) continue;
      for (std::size_t i = slot.key & mask;; i = (i + 1) & mask) {
        if (slots_[i].key == 0) {
          slots_[i] = slot;
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  Slot zero_slot_;
  bool has_zero_ = false;
  std::size_t size_ = 0;
};

}  // namespace cstuner
