#pragma once
// Error types and invariant-checking macros used throughout the framework.

#include <stdexcept>
#include <string>

namespace cstuner {

/// Base class for all csTuner errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A parameter setting violates an explicit or implicit constraint.
class ConstraintError : public Error {
 public:
  using Error::Error;
};

/// Numerical routine failure (singular system, non-finite input, ...).
class NumericError : public Error {
 public:
  using Error::Error;
};

/// Misuse of an API (bad argument, wrong call order).
class UsageError : public Error {
 public:
  using Error::Error;
};

/// An operation was cancelled cooperatively (session cancel, server drain).
/// The throwing component guarantees it mutated no shared state for the
/// cancelled work, so the caller may retry or resume later.
class CancelledError : public Error {
 public:
  using Error::Error;
};

/// A deadline expired: the cancellation was initiated by a time budget (the
/// evaluator's virtual-clock deadline), not by an explicit cancel.
class DeadlineError : public CancelledError {
 public:
  using CancelledError::CancelledError;
};

[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);

}  // namespace cstuner

/// Runtime invariant check, active in all build types.
#define CSTUNER_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::cstuner::throw_check_failure(#expr, __FILE__, __LINE__, "");     \
    }                                                                    \
  } while (0)

#define CSTUNER_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::cstuner::throw_check_failure(#expr, __FILE__, __LINE__, (msg));  \
    }                                                                    \
  } while (0)
