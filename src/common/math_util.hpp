#pragma once
// Small integer/floating-point helpers shared across modules.

#include <bit>
#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace cstuner {

constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// floor(log2(x)) for x >= 1.
constexpr int ilog2(std::uint64_t x) {
  return 63 - std::countl_zero(x | 1ULL);
}

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) {
  return std::bit_ceil(x);
}

template <typename T>
constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

/// Round `a` up to a multiple of `b`.
template <typename T>
constexpr T round_up(T a, T b) {
  return ceil_div(a, b) * b;
}

template <typename T>
constexpr T clamp(T v, T lo, T hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

/// Powers of two in [1, max_value] inclusive.
inline std::vector<std::int64_t> pow2_range(std::int64_t max_value) {
  CSTUNER_CHECK(max_value >= 1);
  std::vector<std::int64_t> out;
  for (std::int64_t v = 1; v <= max_value; v *= 2) out.push_back(v);
  return out;
}

}  // namespace cstuner
