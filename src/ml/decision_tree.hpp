#pragma once
// CART decision trees (regression by variance reduction, classification by
// Gini impurity). Substrate for the random forest that the Garvey baseline
// uses to predict the optimal memory type of a stencil (§II-C / §V-A2).

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace cstuner::ml {

/// Row-major feature table: samples x features.
struct TableView {
  std::span<const double> values;  // size = n_samples * n_features
  std::size_t n_samples = 0;
  std::size_t n_features = 0;

  double at(std::size_t sample, std::size_t feature) const {
    return values[sample * n_features + feature];
  }
};

struct TreeConfig {
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 2;
  std::size_t min_samples_split = 4;
  /// Features examined per split; 0 = all (single tree), forests pass
  /// sqrt(n_features).
  std::size_t max_features = 0;
};

enum class TreeTask { kRegression, kClassification };

class DecisionTree {
 public:
  DecisionTree(TreeTask task, TreeConfig config);

  /// Fits on the given sample indices (callers pass bootstrap samples).
  /// Targets are real values for regression, non-negative class ids (stored
  /// as doubles) for classification.
  void fit(const TableView& x, std::span<const double> y,
           std::span<const std::size_t> sample_indices, Rng& rng);

  /// Fit on all samples.
  void fit(const TableView& x, std::span<const double> y, Rng& rng);

  double predict(std::span<const double> features) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const;

 private:
  struct Node {
    bool is_leaf = true;
    std::size_t feature = 0;
    double threshold = 0.0;
    double value = 0.0;  // mean (regression) or majority class
    std::size_t left = 0;
    std::size_t right = 0;
  };

  std::size_t build(const TableView& x, std::span<const double> y,
                    std::vector<std::size_t>& indices, std::size_t lo,
                    std::size_t hi, std::size_t depth, Rng& rng);
  double leaf_value(std::span<const double> y,
                    std::span<const std::size_t> indices, std::size_t lo,
                    std::size_t hi) const;
  double impurity(std::span<const double> y,
                  std::span<const std::size_t> indices, std::size_t lo,
                  std::size_t hi) const;

  TreeTask task_;
  TreeConfig config_;
  std::vector<Node> nodes_;
};

}  // namespace cstuner::ml
