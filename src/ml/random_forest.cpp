#include "ml/random_forest.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace cstuner::ml {

RandomForest::RandomForest(TreeTask task, ForestConfig config)
    : task_(task), config_(config) {
  CSTUNER_CHECK(config_.n_trees >= 1);
  CSTUNER_CHECK(config_.bootstrap_fraction > 0.0 &&
                config_.bootstrap_fraction <= 1.0);
}

void RandomForest::fit(const TableView& x, std::span<const double> y,
                       Rng& rng) {
  CSTUNER_CHECK(x.n_samples == y.size());
  CSTUNER_CHECK(x.n_samples >= 1);
  trees_.clear();
  TreeConfig tree_config = config_.tree;
  if (tree_config.max_features == 0) {
    tree_config.max_features = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::sqrt(static_cast<double>(x.n_features))));
  }
  const auto bag_size = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.bootstrap_fraction *
                                  static_cast<double>(x.n_samples)));
  for (std::size_t t = 0; t < config_.n_trees; ++t) {
    std::vector<std::size_t> bag(bag_size);
    for (auto& s : bag) s = rng.index(x.n_samples);
    DecisionTree tree(task_, tree_config);
    tree.fit(x, y, bag, rng);
    trees_.push_back(std::move(tree));
  }
}

double RandomForest::predict(std::span<const double> features) const {
  CSTUNER_CHECK(!trees_.empty());
  if (task_ == TreeTask::kRegression) {
    double sum = 0.0;
    for (const auto& tree : trees_) sum += tree.predict(features);
    return sum / static_cast<double>(trees_.size());
  }
  std::map<double, std::size_t> votes;
  for (const auto& tree : trees_) ++votes[tree.predict(features)];
  double best = 0.0;
  std::size_t best_count = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_count) {
      best_count = count;
      best = label;
    }
  }
  return best;
}

std::vector<double> RandomForest::tree_predictions(
    std::span<const double> features) const {
  CSTUNER_CHECK(!trees_.empty());
  std::vector<double> out;
  out.reserve(trees_.size());
  for (const auto& tree : trees_) out.push_back(tree.predict(features));
  return out;
}

std::vector<std::pair<double, double>> RandomForest::vote_fractions(
    std::span<const double> features) const {
  CSTUNER_CHECK(!trees_.empty());
  std::map<double, std::size_t> votes;
  for (const auto& tree : trees_) ++votes[tree.predict(features)];
  std::vector<std::pair<double, double>> out;
  for (const auto& [label, count] : votes) {
    out.emplace_back(label, static_cast<double>(count) /
                                static_cast<double>(trees_.size()));
  }
  return out;
}

}  // namespace cstuner::ml
