#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "common/error.hpp"

namespace cstuner::ml {

DecisionTree::DecisionTree(TreeTask task, TreeConfig config)
    : task_(task), config_(config) {}

void DecisionTree::fit(const TableView& x, std::span<const double> y,
                       std::span<const std::size_t> sample_indices, Rng& rng) {
  CSTUNER_CHECK(x.n_samples == y.size());
  CSTUNER_CHECK(!sample_indices.empty());
  nodes_.clear();
  std::vector<std::size_t> indices(sample_indices.begin(),
                                   sample_indices.end());
  build(x, y, indices, 0, indices.size(), 0, rng);
}

void DecisionTree::fit(const TableView& x, std::span<const double> y,
                       Rng& rng) {
  std::vector<std::size_t> all(x.n_samples);
  std::iota(all.begin(), all.end(), std::size_t{0});
  fit(x, y, all, rng);
}

double DecisionTree::leaf_value(std::span<const double> y,
                                std::span<const std::size_t> indices,
                                std::size_t lo, std::size_t hi) const {
  if (task_ == TreeTask::kRegression) {
    double sum = 0.0;
    for (std::size_t i = lo; i < hi; ++i) sum += y[indices[i]];
    return sum / static_cast<double>(hi - lo);
  }
  std::map<double, std::size_t> counts;
  for (std::size_t i = lo; i < hi; ++i) ++counts[y[indices[i]]];
  double best = 0.0;
  std::size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best_count = count;
      best = label;
    }
  }
  return best;
}

double DecisionTree::impurity(std::span<const double> y,
                              std::span<const std::size_t> indices,
                              std::size_t lo, std::size_t hi) const {
  const auto n = static_cast<double>(hi - lo);
  if (task_ == TreeTask::kRegression) {
    double sum = 0.0, sq = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
      const double v = y[indices[i]];
      sum += v;
      sq += v * v;
    }
    const double mu = sum / n;
    return sq / n - mu * mu;  // variance
  }
  std::map<double, std::size_t> counts;
  for (std::size_t i = lo; i < hi; ++i) ++counts[y[indices[i]]];
  double gini = 1.0;
  for (const auto& [label, count] : counts) {
    (void)label;
    const double p = static_cast<double>(count) / n;
    gini -= p * p;
  }
  return gini;
}

std::size_t DecisionTree::build(const TableView& x, std::span<const double> y,
                                std::vector<std::size_t>& indices,
                                std::size_t lo, std::size_t hi,
                                std::size_t depth, Rng& rng) {
  const std::size_t node_index = nodes_.size();
  nodes_.emplace_back();
  nodes_[node_index].value = leaf_value(y, indices, lo, hi);

  const std::size_t count = hi - lo;
  const double node_impurity = impurity(y, indices, lo, hi);
  if (depth >= config_.max_depth || count < config_.min_samples_split ||
      node_impurity <= 1e-12) {
    return node_index;
  }

  // Candidate features: all, or a random subset for forests.
  std::vector<std::size_t> features(x.n_features);
  std::iota(features.begin(), features.end(), std::size_t{0});
  if (config_.max_features > 0 && config_.max_features < x.n_features) {
    rng.shuffle(features);
    features.resize(config_.max_features);
  }

  std::size_t best_feature = 0;
  double best_threshold = 0.0;
  double best_score = std::numeric_limits<double>::infinity();
  bool found = false;

  std::vector<std::pair<double, std::size_t>> sorted;
  sorted.reserve(count);
  for (std::size_t f : features) {
    sorted.clear();
    for (std::size_t i = lo; i < hi; ++i) {
      sorted.emplace_back(x.at(indices[i], f), indices[i]);
    }
    std::sort(sorted.begin(), sorted.end());
    // Evaluate splits between distinct adjacent feature values.
    std::vector<std::size_t> order(count);
    for (std::size_t i = 0; i < count; ++i) order[i] = sorted[i].second;
    for (std::size_t cut = config_.min_samples_leaf;
         cut + config_.min_samples_leaf <= count; ++cut) {
      if (sorted[cut - 1].first == sorted[cut].first) continue;
      const double left_imp = impurity(y, order, 0, cut);
      const double right_imp = impurity(y, order, cut, count);
      const double score =
          (static_cast<double>(cut) * left_imp +
           static_cast<double>(count - cut) * right_imp) /
          static_cast<double>(count);
      if (score < best_score) {
        best_score = score;
        best_feature = f;
        best_threshold = 0.5 * (sorted[cut - 1].first + sorted[cut].first);
        found = true;
      }
    }
  }
  if (!found || best_score >= node_impurity - 1e-12) return node_index;

  // Partition indices[lo, hi) by the chosen split.
  auto middle = std::stable_partition(
      indices.begin() + static_cast<std::ptrdiff_t>(lo),
      indices.begin() + static_cast<std::ptrdiff_t>(hi),
      [&](std::size_t s) { return x.at(s, best_feature) <= best_threshold; });
  const auto mid =
      static_cast<std::size_t>(middle - indices.begin());
  if (mid == lo || mid == hi) return node_index;  // degenerate split

  const std::size_t left = build(x, y, indices, lo, mid, depth + 1, rng);
  const std::size_t right = build(x, y, indices, mid, hi, depth + 1, rng);
  nodes_[node_index].is_leaf = false;
  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
  return node_index;
}

double DecisionTree::predict(std::span<const double> features) const {
  CSTUNER_CHECK(!nodes_.empty());
  std::size_t node = 0;
  while (!nodes_[node].is_leaf) {
    const auto& n = nodes_[node];
    node = (features[n.feature] <= n.threshold) ? n.left : n.right;
  }
  return nodes_[node].value;
}

std::size_t DecisionTree::depth() const {
  // Depth by traversal (nodes store no depth).
  if (nodes_.empty()) return 0;
  std::size_t max_depth = 0;
  struct Item {
    std::size_t node;
    std::size_t depth;
  };
  std::vector<Item> stack{{0, 1}};
  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, item.depth);
    const auto& n = nodes_[item.node];
    if (!n.is_leaf) {
      stack.push_back({n.left, item.depth + 1});
      stack.push_back({n.right, item.depth + 1});
    }
  }
  return max_depth;
}

}  // namespace cstuner::ml
