#pragma once
// Bagged random forest over the CART trees. Garvey [13] trains a random
// forest to predict the optimal memory type for a stencil before grouping
// and exhaustively searching parameters; our Garvey baseline reproduces that
// stage with this forest.

#include <vector>

#include "ml/decision_tree.hpp"

namespace cstuner::ml {

struct ForestConfig {
  std::size_t n_trees = 32;
  TreeConfig tree;
  /// Bootstrap sample fraction of the training set per tree.
  double bootstrap_fraction = 1.0;
};

class RandomForest {
 public:
  RandomForest(TreeTask task, ForestConfig config);

  void fit(const TableView& x, std::span<const double> y, Rng& rng);

  /// Mean of tree outputs (regression) or majority vote (classification).
  double predict(std::span<const double> features) const;

  /// Per-class vote fractions (classification); class ids are the distinct
  /// target values seen during training.
  std::vector<std::pair<double, double>> vote_fractions(
      std::span<const double> features) const;

  /// Every tree's raw prediction at `features`, in tree order — the
  /// forest's empirical predictive distribution. The surrogate-guided
  /// optimizer reads mean and spread off it to score expected improvement.
  std::vector<double> tree_predictions(std::span<const double> features) const;

  std::size_t tree_count() const { return trees_.size(); }

 private:
  TreeTask task_;
  ForestConfig config_;
  std::vector<DecisionTree> trees_;
};

}  // namespace cstuner::ml
