#include "tuner/dataset.hpp"

#include "common/error.hpp"

namespace cstuner::tuner {

std::size_t PerfDataset::best_index() const {
  CSTUNER_CHECK(!times_ms.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < times_ms.size(); ++i) {
    if (times_ms[i] < times_ms[best]) best = i;
  }
  return best;
}

regress::Matrix PerfDataset::feature_matrix() const {
  regress::Matrix x(settings.size(), space::kParamCount);
  for (std::size_t r = 0; r < settings.size(); ++r) {
    const auto row = space::SearchSpace::to_feature_row(settings[r]);
    for (std::size_t c = 0; c < space::kParamCount; ++c) x(r, c) = row[c];
  }
  return x;
}

std::vector<double> PerfDataset::metric_column(std::size_t metric) const {
  std::vector<double> col(settings.size());
  for (std::size_t r = 0; r < settings.size(); ++r) {
    col[r] = metrics(r, metric);
  }
  return col;
}

PerfDataset profile_settings(const space::SearchSpace& space,
                             const gpusim::Simulator& simulator,
                             const std::vector<space::Setting>& settings,
                             ThreadPool* pool, const FaultInjector* injector) {
  // Faulting settings are dropped up front (a pure per-setting decision, so
  // the surviving row order is deterministic); the rows that remain then
  // profile with disjoint, stable run indices.
  std::vector<space::Setting> kept;
  if (injector != nullptr) {
    kept.reserve(settings.size());
    for (const auto& s : settings) {
      if (injector->decide(s.hash(), /*attempt=*/1) == gpusim::FaultKind::kNone) {
        kept.push_back(s);
      }
    }
  }
  const auto& rows = injector != nullptr ? kept : settings;

  PerfDataset ds;
  ds.settings = rows;
  ds.times_ms.resize(rows.size());
  ds.metrics = regress::Matrix(rows.size(), gpusim::kMetricCount);
  // Each row depends only on its own (setting, run_index), so rows profile
  // concurrently into disjoint slots and the result is order-independent.
  const auto profile_row = [&](std::size_t i) {
    const auto& s = rows[i];
    CSTUNER_CHECK_MSG(space.is_valid(s), "dataset requires valid settings");
    double ms = simulator.measure_ms(space.spec(), s, /*run_index=*/i);
    if (injector != nullptr) {
      ms *= injector->noise_factor(s.hash(), /*run_index=*/i);
    }
    ds.times_ms[i] = ms;
    const auto metrics =
        simulator.measure_metrics(space.spec(), s, /*run_index=*/i);
    for (std::size_t m = 0; m < gpusim::kMetricCount; ++m) {
      ds.metrics(i, m) = metrics[m];
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(rows.size(), profile_row);
  } else {
    for (std::size_t i = 0; i < rows.size(); ++i) profile_row(i);
  }
  return ds;
}

PerfDataset collect_dataset(const space::SearchSpace& space,
                            const gpusim::Simulator& simulator,
                            std::size_t count, Rng& rng, ThreadPool* pool,
                            const FaultInjector* injector) {
  // Training wants a per-parameter-balanced design, not a sample that is
  // proportional to region mass: at dataset sizes (~128) the proportional
  // spread collapses onto the few largest enumeration blocks and the PMNF
  // fits degrade measurably. The constructive sampler keeps every flag and
  // value represented.
  const auto settings = space.sample_constructive(rng, count);
  return profile_settings(space, simulator, settings, pool, injector);
}

}  // namespace cstuner::tuner
