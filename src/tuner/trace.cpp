#include "tuner/trace.hpp"

#include <limits>

namespace cstuner::tuner {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void ConvergenceTrace::record(std::size_t iteration, std::size_t evaluations,
                              double virtual_time_s, double best_time_ms) {
  points.push_back({iteration, evaluations, virtual_time_s, best_time_ms});
}

double ConvergenceTrace::best_at_iteration(std::size_t k) const {
  double best = kInf;
  for (const auto& p : points) {
    if (p.iteration <= k && p.best_time_ms < best) best = p.best_time_ms;
  }
  return best;
}

double ConvergenceTrace::best_at_time(double seconds) const {
  double best = kInf;
  for (const auto& p : points) {
    if (p.virtual_time_s <= seconds && p.best_time_ms < best) {
      best = p.best_time_ms;
    }
  }
  return best;
}

double ConvergenceTrace::final_best() const {
  double best = kInf;
  for (const auto& p : points) {
    if (p.best_time_ms < best) best = p.best_time_ms;
  }
  return best;
}

double ConvergenceTrace::time_to_reach(double target_ms) const {
  double first = kInf;
  for (const auto& p : points) {
    if (p.best_time_ms <= target_ms) first = std::min(first, p.virtual_time_s);
  }
  return first;
}

std::size_t ConvergenceTrace::iterations_to_reach(double target_ms) const {
  std::size_t first = static_cast<std::size_t>(-1);
  for (const auto& p : points) {
    if (p.best_time_ms <= target_ms && p.iteration < first) {
      first = p.iteration;
    }
  }
  return first;
}

double mean_finite(const std::vector<double>& values) {
  double sum = 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (v < kInf) {
      sum += v;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : kInf;
}

}  // namespace cstuner::tuner
