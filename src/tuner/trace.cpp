#include "tuner/trace.hpp"

#include <limits>

#include "common/error.hpp"
#include "common/json.hpp"

namespace cstuner::tuner {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

void ConvergenceTrace::record(std::size_t iteration, std::size_t evaluations,
                              double virtual_time_s, double best_time_ms) {
  points.push_back({iteration, evaluations, virtual_time_s, best_time_ms});
}

void ConvergenceTrace::record_event(std::uint64_t setting_key,
                                    EvalStatus status, std::uint8_t attempts) {
  events.push_back({setting_key, status, attempts});
}

double ConvergenceTrace::best_at_iteration(std::size_t k) const {
  double best = kInf;
  for (const auto& p : points) {
    if (p.iteration <= k && p.best_time_ms < best) best = p.best_time_ms;
  }
  return best;
}

double ConvergenceTrace::best_at_time(double seconds) const {
  double best = kInf;
  for (const auto& p : points) {
    if (p.virtual_time_s <= seconds && p.best_time_ms < best) {
      best = p.best_time_ms;
    }
  }
  return best;
}

double ConvergenceTrace::final_best() const {
  double best = kInf;
  for (const auto& p : points) {
    if (p.best_time_ms < best) best = p.best_time_ms;
  }
  return best;
}

double ConvergenceTrace::time_to_reach(double target_ms) const {
  double first = kInf;
  for (const auto& p : points) {
    if (p.best_time_ms <= target_ms) first = std::min(first, p.virtual_time_s);
  }
  return first;
}

std::size_t ConvergenceTrace::iterations_to_reach(double target_ms) const {
  std::size_t first = static_cast<std::size_t>(-1);
  for (const auto& p : points) {
    if (p.best_time_ms <= target_ms && p.iteration < first) {
      first = p.iteration;
    }
  }
  return first;
}

std::size_t ConvergenceTrace::event_count(EvalStatus status) const {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.status == status) ++n;
  }
  return n;
}

void ConvergenceTrace::write_json(JsonWriter& json) const {
  json.begin_object();
  json.key("points").begin_array();
  for (const auto& p : points) {
    json.begin_object();
    json.field("iteration", static_cast<std::uint64_t>(p.iteration));
    json.field("evaluations", static_cast<std::uint64_t>(p.evaluations));
    json.field("time_s", p.virtual_time_s);
    json.field("best_ms", p.best_time_ms);
    json.end_object();
  }
  json.end_array();
  json.key("events").begin_array();
  for (const auto& e : events) {
    json.begin_object();
    json.field("key", e.setting_key);
    json.field("status", eval_status_name(e.status));
    json.field("attempts", static_cast<std::uint64_t>(e.attempts));
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

ConvergenceTrace ConvergenceTrace::from_json(const JsonValue& value) {
  ConvergenceTrace trace;
  for (const auto& p : value.at("points").as_array()) {
    TracePoint point;
    point.iteration = static_cast<std::size_t>(p.at("iteration").as_u64());
    point.evaluations = static_cast<std::size_t>(p.at("evaluations").as_u64());
    point.virtual_time_s = p.at("time_s").as_double();
    point.best_time_ms = p.at("best_ms").as_double();
    trace.points.push_back(point);
  }
  for (const auto& e : value.at("events").as_array()) {
    EvalEvent event;
    event.setting_key = e.at("key").as_u64();
    const std::string& name = e.at("status").as_string();
    bool matched = false;
    for (int s = 0; s <= static_cast<int>(EvalStatus::kQuarantined); ++s) {
      if (name == eval_status_name(static_cast<EvalStatus>(s))) {
        event.status = static_cast<EvalStatus>(s);
        matched = true;
        break;
      }
    }
    if (!matched) throw Error("unknown eval status in trace: " + name);
    event.attempts = static_cast<std::uint8_t>(e.at("attempts").as_u64());
    trace.events.push_back(event);
  }
  return trace;
}

double mean_finite(const std::vector<double>& values) {
  double sum = 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (v < kInf) {
      sum += v;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : kInf;
}

}  // namespace cstuner::tuner
