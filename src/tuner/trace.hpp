#pragma once
// Convergence traces: best-found time as a function of elapsed iterations
// and virtual seconds, plus aggregation across repeated runs (the paper
// averages 10 runs per method).
//
// Besides the convergence points, a trace carries the evaluation *events*
// the fault-tolerance layer emits — failed, retried and quarantined
// evaluations — so a tuning run's failure history is auditable after the
// fact. Both halves round-trip through JSON (write_json / from_json) for
// the CLI's --json output and offline analysis.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "tuner/fault.hpp"

namespace cstuner::tuner {

struct TracePoint {
  std::size_t iteration = 0;      ///< completed tuner iterations
  std::size_t evaluations = 0;    ///< unique settings evaluated so far
  double virtual_time_s = 0.0;
  double best_time_ms = 0.0;
};

/// One noteworthy evaluation: any failure, any retried success, and any
/// evaluation served from the quarantine list. Plain successes are not
/// evented (they are the overwhelming majority and carry no diagnosis).
struct EvalEvent {
  std::uint64_t setting_key = 0;
  EvalStatus status = EvalStatus::kOk;
  std::uint8_t attempts = 0;
};

struct ConvergenceTrace {
  std::vector<TracePoint> points;
  std::vector<EvalEvent> events;

  void record(std::size_t iteration, std::size_t evaluations,
              double virtual_time_s, double best_time_ms);
  void record_event(std::uint64_t setting_key, EvalStatus status,
                    std::uint8_t attempts);
  void clear() {
    points.clear();
    events.clear();
  }

  /// Best kernel time found by the end of iteration `k` (inclusive);
  /// +inf when nothing was evaluated yet.
  double best_at_iteration(std::size_t k) const;

  /// Best kernel time found within the first `seconds` of virtual time.
  double best_at_time(double seconds) const;

  /// Final best.
  double final_best() const;

  /// First virtual time at which the best reached `target_ms` (inclusive);
  /// +inf if never. The time-to-quality measure used by the ablation bench.
  double time_to_reach(double target_ms) const;

  /// First iteration at which the best reached `target_ms`; SIZE_MAX if
  /// never.
  std::size_t iterations_to_reach(double target_ms) const;

  /// Events with the given status (quarantine audits, retry counts).
  std::size_t event_count(EvalStatus status) const;

  /// JSON round trip: write_json(w); from_json(json_parse(w.str())) is
  /// field-for-field (and bit-for-bit, for the doubles) identical.
  void write_json(JsonWriter& json) const;
  static ConvergenceTrace from_json(const JsonValue& value);
};

/// Element-wise mean of per-repeat values, ignoring +inf entries (a repeat
/// that has no data yet at that point contributes nothing).
double mean_finite(const std::vector<double>& values);

}  // namespace cstuner::tuner
