#pragma once
// Convergence traces: best-found time as a function of elapsed iterations
// and virtual seconds, plus aggregation across repeated runs (the paper
// averages 10 runs per method).

#include <cstddef>
#include <vector>

namespace cstuner::tuner {

struct TracePoint {
  std::size_t iteration = 0;      ///< completed tuner iterations
  std::size_t evaluations = 0;    ///< unique settings evaluated so far
  double virtual_time_s = 0.0;
  double best_time_ms = 0.0;
};

struct ConvergenceTrace {
  std::vector<TracePoint> points;

  void record(std::size_t iteration, std::size_t evaluations,
              double virtual_time_s, double best_time_ms);
  void clear() { points.clear(); }

  /// Best kernel time found by the end of iteration `k` (inclusive);
  /// +inf when nothing was evaluated yet.
  double best_at_iteration(std::size_t k) const;

  /// Best kernel time found within the first `seconds` of virtual time.
  double best_at_time(double seconds) const;

  /// Final best.
  double final_best() const;

  /// First virtual time at which the best reached `target_ms` (inclusive);
  /// +inf if never. The time-to-quality measure used by the ablation bench.
  double time_to_reach(double target_ms) const;

  /// First iteration at which the best reached `target_ms`; SIZE_MAX if
  /// never.
  std::size_t iterations_to_reach(double target_ms) const;
};

/// Element-wise mean of per-repeat values, ignoring +inf entries (a repeat
/// that has no data yet at that point contributes nothing).
double mean_finite(const std::vector<double>& values);

}  // namespace cstuner::tuner
