#include "tuner/checkpoint.hpp"

#include <bit>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace cstuner::tuner {

double JournalEntry::time_ms() const {
  return std::bit_cast<double>(time_bits);
}

EvalResult JournalEntry::to_result() const {
  EvalResult r;
  r.status = status;
  r.time_ms = time_ms();
  r.attempts = attempts;
  return r;
}

namespace {

EvalStatus status_from_name(const std::string& name) {
  for (int s = 0; s <= static_cast<int>(EvalStatus::kQuarantined); ++s) {
    if (name == eval_status_name(static_cast<EvalStatus>(s))) {
      return static_cast<EvalStatus>(s);
    }
  }
  throw Error("unknown eval status in journal: " + name);
}

std::string format_journal_line(const JournalEntry& e) {
  JsonWriter json;
  json.begin_object();
  json.field("key", e.key);
  json.field("status", eval_status_name(e.status));
  json.field("time_bits", e.time_bits);
  json.field("attempts", static_cast<std::uint64_t>(e.attempts));
  json.field("overhead_ticks", static_cast<std::int64_t>(e.overhead_ticks));
  json.end_object();
  return json.str() + "\n";
}

JournalEntry parse_journal_line(const JsonValue& v) {
  JournalEntry e;
  e.key = v.at("key").as_u64();
  e.status = status_from_name(v.at("status").as_string());
  e.time_bits = v.at("time_bits").as_u64();
  e.attempts = static_cast<std::uint8_t>(v.at("attempts").as_u64());
  e.overhead_ticks = v.at("overhead_ticks").as_i64();
  return e;
}

std::string format_island_event_line(const IslandEvent& e) {
  JsonWriter json;
  json.begin_object();
  json.field("island_event", island_event_kind_name(e.kind));
  json.field("rank", static_cast<std::int64_t>(e.rank));
  json.field("generation", e.generation);
  json.field("peer", static_cast<std::int64_t>(e.peer));
  json.end_object();
  return json.str() + "\n";
}

IslandEvent parse_island_event(const JsonValue& v) {
  IslandEvent e;
  e.kind = island_event_kind_from_name(v.at("island_event").as_string());
  e.rank = static_cast<int>(v.at("rank").as_i64());
  e.generation = v.at("generation").as_u64();
  e.peer = static_cast<int>(v.at("peer").as_i64());
  return e;
}

std::tuple<int, int, std::uint64_t, int> event_key(const IslandEvent& e) {
  return {static_cast<int>(e.kind), e.rank, e.generation, e.peer};
}

/// Reruns a Vfs operation as a checkpoint operation: any storage failure
/// surfaces as CheckpointError, the typed, non-poisoning signal callers
/// degrade on (a failed flush must never masquerade as a tuning bug).
template <typename Fn>
auto guard(const char* what, Fn&& fn) -> decltype(fn()) {
  try {
    return fn();
  } catch (const io::VfsError& e) {
    throw CheckpointError(std::string(what) + ": " + e.what());
  }
}

}  // namespace

// Journal write half: buffered lines plus the open append handle. A Vfs
// handle instead of an ofstream because SyncPolicy::kEvery needs fsync,
// which streams cannot express.
struct Checkpoint::Writer {
  std::vector<std::string> pending;
  io::Vfs::Handle handle = -1;
  bool open = false;
};

Checkpoint::Checkpoint(std::string directory, io::Vfs* vfs)
    : directory_(std::move(directory)),
      vfs_(vfs != nullptr ? vfs : &io::Vfs::real()),
      writer_(new Writer) {
  guard("cannot create checkpoint dir",
        [&] { vfs_->mkdirs(directory_); });
}

Checkpoint::~Checkpoint() {
  try {
    flush();
  } catch (...) {
    // Destructor must not throw; an unflushed tail just loses the last
    // batch, which resume tolerates by design.
  }
  if (writer_->open) {
    try {
      vfs_->close(writer_->handle);
    } catch (...) {
      // Nothing useful to do with a failed close on teardown.
    }
  }
  delete writer_;
}

std::string Checkpoint::journal_path() const {
  return directory_ + "/journal.jsonl";
}

std::string Checkpoint::snapshot_path() const {
  return directory_ + "/snapshot.json";
}

std::string Checkpoint::snapshot_prev_path() const {
  return directory_ + "/snapshot.prev.json";
}

bool Checkpoint::has_journal_file() const {
  return guard("cannot stat journal",
               [&] { return vfs_->exists(journal_path()); });
}

std::size_t Checkpoint::load() {
  replay_.clear();
  island_events_.clear();
  known_events_.clear();
  loaded_dataset_.reset();
  loaded_stats_.reset();
  loaded_optimizer_state_.reset();

  // Snapshot first. The rename publication makes it complete-or-absent on
  // POSIX semantics; a torn or corrupt snapshot.json (crash mid-write on a
  // weaker filesystem, disk damage) falls back to the preserved previous
  // good snapshot instead of aborting the resume.
  if (!try_load_snapshot(snapshot_path())) {
    if (try_load_snapshot(snapshot_prev_path())) {
      CSTUNER_OBS_COUNT("checkpoint.snapshot_fallbacks", 1);
    }
  }

  // Journal: accept every complete line; a torn tail (kill mid-write) is
  // truncated away so subsequent appends produce a well-formed file.
  if (guard("cannot stat journal",
            [&] { return vfs_->exists(journal_path()); })) {
    const std::string text = guard(
        "cannot read journal", [&] { return vfs_->read_file(journal_path()); });
    std::size_t valid = 0;  // byte offset past the last complete good line
    std::size_t pos = 0;
    while (pos < text.size()) {
      const std::size_t nl = text.find('\n', pos);
      if (nl == std::string::npos) break;  // no terminator: torn tail
      const std::string_view line(text.data() + pos, nl - pos);
      try {
        JsonValue v = json_parse(line);
        if (v.find("island_event") != nullptr) {
          IslandEvent e = parse_island_event(v);
          if (known_events_.insert(event_key(e)).second) {
            island_events_.push_back(e);
          }
        } else {
          JournalEntry e = parse_journal_line(v);
          replay_.emplace(e.key, e);  // first occurrence wins
        }
      } catch (const Error&) {
        break;  // torn or corrupt line: drop it and everything after
      }
      pos = valid = nl + 1;
    }
    if (valid < text.size()) {
      CSTUNER_OBS_COUNT("checkpoint.torn_tail_truncations", 1);
      guard("cannot truncate torn journal",
            [&] { vfs_->truncate(journal_path(), valid); });
    }
  }
  return replay_.size();
}

bool Checkpoint::try_load_snapshot(const std::string& path) {
  try {
    if (!vfs_->exists(path)) return false;
  } catch (const io::VfsError&) {
    return false;
  }
  // Parse into locals first: a snapshot that tears between the dataset and
  // the evaluator state must not leave half-loaded fields behind when the
  // caller falls back to the previous snapshot.
  std::optional<PerfDataset> dataset;
  std::optional<FaultStats> stats;
  std::optional<JsonValue> optimizer_state;
  try {
    JsonValue snap = json_parse(vfs_->read_file(path));
    if (const JsonValue* ds = snap.find("dataset"); ds && !ds->is_null()) {
      dataset = parse_dataset(*ds);
    }
    if (const JsonValue* ev = snap.find("evaluator"); ev && !ev->is_null()) {
      if (const JsonValue* st = ev->find("stats")) {
        stats = FaultStats::from_json(*st);
      }
    }
    if (const JsonValue* op = snap.find("optimizer"); op && !op->is_null()) {
      optimizer_state = *op;
    }
  } catch (const Error&) {
    return false;  // torn or corrupt: caller tries the previous snapshot
  }
  loaded_dataset_ = std::move(dataset);
  loaded_stats_ = std::move(stats);
  loaded_optimizer_state_ = std::move(optimizer_state);
  if (loaded_dataset_.has_value()) {
    // Re-register so the resumed run's snapshots keep embedding it even
    // if the caller never calls set_dataset_json again.
    dataset_json_ = serialize_dataset(*loaded_dataset_);
  }
  return true;
}

void Checkpoint::set_sync_policy(SyncPolicy policy) { sync_policy_ = policy; }

void Checkpoint::append(const JournalEntry& entry) {
  CSTUNER_OBS_COUNT("checkpoint.appends", 1);
  std::string line = format_journal_line(entry);
  std::lock_guard<std::mutex> lock(writer_mutex_);
  writer_->pending.push_back(std::move(line));
  if (sync_policy_ == SyncPolicy::kEvery) flush_locked(true);
}

void Checkpoint::append_island_event(const IslandEvent& event) {
  std::string line = format_island_event_line(event);
  std::lock_guard<std::mutex> lock(writer_mutex_);
  // A resumed run re-fires its journaled kills and re-emits the matching
  // events; dropping the duplicates keeps the journal stable across any
  // number of resume cycles.
  if (!known_events_.insert(event_key(event)).second) return;
  island_events_.push_back(event);
  CSTUNER_OBS_COUNT("checkpoint.island_events", 1);
  writer_->pending.push_back(std::move(line));
  if (sync_policy_ == SyncPolicy::kEvery) flush_locked(true);
}

void Checkpoint::flush() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  flush_locked(sync_policy_ == SyncPolicy::kEvery);
}

void Checkpoint::flush_locked(bool sync) {
  if (writer_->pending.empty()) return;
  CSTUNER_TRACE_SPAN("io", "checkpoint.flush");
  CSTUNER_OBS_COUNT("checkpoint.flushes", 1);
  if (!writer_->open) {
    writer_->handle = guard("cannot open journal", [&] {
      return vfs_->open(journal_path(), io::Vfs::OpenMode::kAppend);
    });
    writer_->open = true;
    // Make the journal's directory entry itself durable: without this a
    // power cut right after the first flush could lose the whole file even
    // though its bytes were fsync'd (the entry never reached the platter).
    guard("cannot sync checkpoint dir", [&] { vfs_->fsync_dir(directory_); });
  }
  // One write per flush: appends of complete lines keep the torn-tail
  // window to the final line, which load() already truncates away.
  std::string block;
  for (const std::string& line : writer_->pending) block += line;
  guard("journal write failed",
        [&] { vfs_->write_all(writer_->handle, block); });
  writer_->pending.clear();
  if (sync) {
    guard("journal fsync failed", [&] { vfs_->fsync(writer_->handle); });
  }
}

void Checkpoint::set_dataset_json(std::string dataset_json) {
  dataset_json_ = std::move(dataset_json);
}

void Checkpoint::set_optimizer_state_json(std::string state_json) {
  optimizer_state_json_ = std::move(state_json);
}

void Checkpoint::write_snapshot(const std::string& evaluator_json) {
  CSTUNER_TRACE_SPAN("io", "checkpoint.snapshot");
  CSTUNER_OBS_COUNT("checkpoint.snapshots", 1);
  JsonWriter json;
  json.begin_object();
  json.field("format", std::int64_t{1});
  json.raw_field("dataset", dataset_json_);
  json.raw_field("evaluator", evaluator_json);
  json.raw_field("optimizer", optimizer_state_json_);
  json.end_object();

  guard("cannot publish snapshot", [&] {
    const std::string tmp = snapshot_path() + ".tmp";
    vfs_->write_file_synced(tmp, json.str());
    // Preserve the previous good snapshot before publishing the new one,
    // so a snapshot torn by a crash at any point — even one that slips
    // past the rename barrier on a non-atomic filesystem — can always
    // recover from the .prev copy. Best effort by copy_file's contract:
    // losing the fallback only narrows recovery back to the rename's own
    // atomicity.
    if (vfs_->exists(snapshot_path())) {
      vfs_->unlink(snapshot_prev_path());
      vfs_->copy_file(snapshot_path(), snapshot_prev_path());
    }
    vfs_->rename(tmp, snapshot_path());
    // The rename reached the directory, not the platter: sync the parent
    // so a power cut cannot roll the publication back.
    vfs_->fsync_dir(directory_);
  });
}

void Checkpoint::set_snapshot_interval(int interval) {
  snapshot_interval_ = interval > 0 ? interval : 1;
}

std::string serialize_dataset(const PerfDataset& dataset) {
  JsonWriter json;
  json.begin_object();
  json.key("settings").begin_array();
  for (const auto& s : dataset.settings) {
    json.begin_array();
    for (std::int64_t v : s.raw()) json.value(v);
    json.end_array();
  }
  json.end_array();
  json.key("times_bits").begin_array();
  for (double t : dataset.times_ms) json.value(std::bit_cast<std::uint64_t>(t));
  json.end_array();
  json.key("metrics").begin_object();
  json.field("rows", static_cast<std::uint64_t>(dataset.metrics.rows()));
  json.field("cols", static_cast<std::uint64_t>(dataset.metrics.cols()));
  json.key("bits").begin_array();
  for (std::size_t r = 0; r < dataset.metrics.rows(); ++r) {
    for (std::size_t c = 0; c < dataset.metrics.cols(); ++c) {
      json.value(std::bit_cast<std::uint64_t>(dataset.metrics(r, c)));
    }
  }
  json.end_array();
  json.end_object();
  json.end_object();
  return json.str();
}

PerfDataset parse_dataset(const JsonValue& value) {
  PerfDataset ds;
  for (const JsonValue& row : value.at("settings").as_array()) {
    const auto& vals = row.as_array();
    if (vals.size() != space::kParamCount) {
      throw Error("dataset setting has wrong arity");
    }
    space::Setting s;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      s.set(static_cast<space::ParamId>(i), vals[i].as_i64());
    }
    ds.settings.push_back(s);
  }
  for (const JsonValue& t : value.at("times_bits").as_array()) {
    ds.times_ms.push_back(std::bit_cast<double>(t.as_u64()));
  }
  const JsonValue& m = value.at("metrics");
  const std::size_t rows = m.at("rows").as_u64();
  const std::size_t cols = m.at("cols").as_u64();
  const auto& bits = m.at("bits").as_array();
  if (bits.size() != rows * cols) throw Error("dataset metrics size mismatch");
  ds.metrics = regress::Matrix(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      ds.metrics(r, c) = std::bit_cast<double>(bits[r * cols + c].as_u64());
    }
  }
  if (ds.settings.size() != ds.times_ms.size() ||
      (rows != ds.settings.size() && rows != 0)) {
    throw Error("dataset row counts disagree");
  }
  return ds;
}

}  // namespace cstuner::tuner
