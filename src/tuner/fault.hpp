#pragma once
// Fault-tolerance vocabulary of the evaluation pipeline: the EvalResult
// outcome type that replaces bare measured doubles, the retry/backoff
// policy (budgeted against the virtual clock), per-tune failure statistics,
// and the FaultInjector that scopes the deterministic gpusim::FaultModel to
// one stencil.
//
// Failure taxonomy (docs/fault-tolerance.md):
//   ok           measurement succeeded (possibly after retries)
//   invalid      setting violates space constraints; never measured
//   compile_fail nvcc rejected the variant — permanent, cached, quarantined
//   crash        kernel aborted — permanent, cached, quarantined
//   timeout      kernel hung until the per-evaluation deadline — transient
//   transient    profiler error — transient, retried with backoff
//   quarantined  served from the quarantine list without a measurement

#include <cstdint>
#include <limits>
#include <string>

#include "common/rng.hpp"
#include "gpusim/fault_model.hpp"

namespace cstuner {
class JsonWriter;
class JsonValue;
}  // namespace cstuner

namespace cstuner::tuner {

enum class EvalStatus : std::uint8_t {
  kOk = 0,
  kInvalid,
  kCompileFail,
  kCrash,
  kTimeout,
  kTransient,
  kQuarantined,
};

const char* eval_status_name(EvalStatus status);

/// Outcome of one evaluation. Failed evaluations carry the penalty time
/// (infinity), so callers that only rank by time can use time_or_inf()
/// and stay failure-oblivious; callers that care (statistics, traces,
/// quarantine) read the status.
struct EvalResult {
  EvalStatus status = EvalStatus::kInvalid;
  double time_ms = std::numeric_limits<double>::infinity();
  /// Measurement attempts consumed (0 for invalid/quarantined results).
  std::uint8_t attempts = 0;

  bool ok() const { return status == EvalStatus::kOk; }
  bool failed() const {
    return status != EvalStatus::kOk && status != EvalStatus::kInvalid;
  }
  double time_or_inf() const {
    return ok() ? time_ms : std::numeric_limits<double>::infinity();
  }
};

/// Retry/backoff policy, charged against the evaluator's *virtual* clock —
/// a retried evaluation costs tuning budget exactly as it would cost
/// wall-clock time on real hardware.
struct RetryPolicy {
  /// Total measurement attempts per evaluation (1 = no retries).
  int max_attempts = 3;
  /// Virtual backoff before retry k: initial * multiplier^(k-2).
  double backoff_initial_s = 0.05;
  double backoff_multiplier = 2.0;
  /// Per-evaluation deadline: the virtual cost of one hung attempt (the
  /// watchdog kills the kernel after this long).
  double eval_deadline_s = 2.0;
  /// Per-tune budget of cumulative fault overhead (retries, backoffs,
  /// deadlines). Once spent, evaluations fail fast on the first faulty
  /// attempt instead of retrying. Infinity disables the guard. NOTE: a
  /// finite budget makes retry counts depend on cross-batch commit order,
  /// relaxing bit-identical reproducibility; leave infinite when exact
  /// replay matters.
  double fault_budget_s = std::numeric_limits<double>::infinity();
  /// Committed transient-class failures of one setting before it enters
  /// the quarantine list. Permanent failures quarantine immediately.
  int quarantine_threshold = 2;
};

/// Counters surfaced in the `cstuner tune` summary and bench JSON.
struct FaultStats {
  std::uint64_t compile_fail = 0;  ///< evaluations failed: nvcc rejection
  std::uint64_t crash = 0;         ///< evaluations failed: runtime abort
  std::uint64_t timeout = 0;       ///< evaluations failed: watchdog deadline
  std::uint64_t transient = 0;     ///< evaluations failed: profiler error
  std::uint64_t retries = 0;       ///< extra attempts beyond the first
  std::uint64_t recovered = 0;     ///< evaluations that succeeded on a retry
  std::uint64_t quarantined_settings = 0;  ///< settings on the quarantine list
  std::uint64_t quarantine_hits = 0;  ///< evaluations served from quarantine
  std::uint64_t replayed = 0;  ///< evaluations served from a resume journal
  double fault_overhead_s = 0.0;  ///< virtual seconds burned on faults

  std::uint64_t failed_evaluations() const {
    return compile_fail + crash + timeout + transient;
  }
  bool any() const {
    return failed_evaluations() + retries + quarantine_hits + replayed > 0;
  }

  void write_json(JsonWriter& json) const;
  static FaultStats from_json(const JsonValue& value);
  /// Human-readable one-line summary ("12 failed (7 compile, ...), ...").
  std::string to_string() const;
};

/// The deterministic fault oracle scoped to one (stencil, seed): thin
/// wrapper folding the stencil identity into the gpusim::FaultModel key so
/// different stencils see independent fault patterns from the same seed.
class FaultInjector {
 public:
  FaultInjector(gpusim::FaultConfig config, const std::string& scope);

  const gpusim::FaultConfig& config() const { return model_.config(); }

  gpusim::FaultKind decide(std::uint64_t setting_key, int attempt) const {
    return model_.decide(scoped(setting_key), attempt);
  }
  double noise_factor(std::uint64_t setting_key,
                      std::uint64_t run_index) const {
    return model_.noise_factor(scoped(setting_key), run_index);
  }

 private:
  std::uint64_t scoped(std::uint64_t key) const {
    return hash_combine(scope_salt_, key);
  }

  gpusim::FaultModel model_;
  std::uint64_t scope_salt_;
};

}  // namespace cstuner::tuner
