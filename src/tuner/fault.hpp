#pragma once
// Fault-tolerance vocabulary of the evaluation pipeline: the EvalResult
// outcome type that replaces bare measured doubles, the retry/backoff
// policy (budgeted against the virtual clock), per-tune failure statistics,
// and the FaultInjector that scopes the deterministic gpusim::FaultModel to
// one stencil.
//
// Failure taxonomy (docs/fault-tolerance.md):
//   ok           measurement succeeded (possibly after retries)
//   invalid      setting violates space constraints; never measured
//   compile_fail nvcc rejected the variant — permanent, cached, quarantined
//   crash        kernel aborted — permanent, cached, quarantined
//   timeout      kernel hung until the per-evaluation deadline — transient
//   transient    profiler error — transient, retried with backoff
//   quarantined  served from the quarantine list without a measurement

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/fault_model.hpp"

namespace cstuner {
class JsonWriter;
class JsonValue;
}  // namespace cstuner

namespace cstuner::tuner {

enum class EvalStatus : std::uint8_t {
  kOk = 0,
  kInvalid,
  kCompileFail,
  kCrash,
  kTimeout,
  kTransient,
  kQuarantined,
};

const char* eval_status_name(EvalStatus status);

/// Outcome of one evaluation. Failed evaluations carry the penalty time
/// (infinity), so callers that only rank by time can use time_or_inf()
/// and stay failure-oblivious; callers that care (statistics, traces,
/// quarantine) read the status.
struct EvalResult {
  EvalStatus status = EvalStatus::kInvalid;
  double time_ms = std::numeric_limits<double>::infinity();
  /// Measurement attempts consumed (0 for invalid/quarantined results).
  std::uint8_t attempts = 0;

  bool ok() const { return status == EvalStatus::kOk; }
  bool failed() const {
    return status != EvalStatus::kOk && status != EvalStatus::kInvalid;
  }
  double time_or_inf() const {
    return ok() ? time_ms : std::numeric_limits<double>::infinity();
  }
};

/// Retry/backoff policy, charged against the evaluator's *virtual* clock —
/// a retried evaluation costs tuning budget exactly as it would cost
/// wall-clock time on real hardware.
struct RetryPolicy {
  /// Total measurement attempts per evaluation (1 = no retries).
  int max_attempts = 3;
  /// Virtual backoff before retry k: initial * multiplier^(k-2).
  double backoff_initial_s = 0.05;
  double backoff_multiplier = 2.0;
  /// Per-evaluation deadline: the virtual cost of one hung attempt (the
  /// watchdog kills the kernel after this long).
  double eval_deadline_s = 2.0;
  /// Per-tune budget of cumulative fault overhead (retries, backoffs,
  /// deadlines). Once spent, evaluations fail fast on the first faulty
  /// attempt instead of retrying. Infinity disables the guard. NOTE: a
  /// finite budget makes retry counts depend on cross-batch commit order,
  /// relaxing bit-identical reproducibility; leave infinite when exact
  /// replay matters.
  double fault_budget_s = std::numeric_limits<double>::infinity();
  /// Committed transient-class failures of one setting before it enters
  /// the quarantine list. Permanent failures quarantine immediately.
  int quarantine_threshold = 2;
};

/// Counters surfaced in the `cstuner tune` summary and bench JSON.
struct FaultStats {
  std::uint64_t compile_fail = 0;  ///< evaluations failed: nvcc rejection
  std::uint64_t crash = 0;         ///< evaluations failed: runtime abort
  std::uint64_t timeout = 0;       ///< evaluations failed: watchdog deadline
  std::uint64_t transient = 0;     ///< evaluations failed: profiler error
  std::uint64_t retries = 0;       ///< extra attempts beyond the first
  std::uint64_t recovered = 0;     ///< evaluations that succeeded on a retry
  std::uint64_t quarantined_settings = 0;  ///< settings on the quarantine list
  std::uint64_t quarantine_hits = 0;  ///< evaluations served from quarantine
  std::uint64_t replayed = 0;  ///< evaluations served from a resume journal
  double fault_overhead_s = 0.0;  ///< virtual seconds burned on faults

  std::uint64_t failed_evaluations() const {
    return compile_fail + crash + timeout + transient;
  }
  bool any() const {
    return failed_evaluations() + retries + quarantine_hits + replayed > 0;
  }

  void write_json(JsonWriter& json) const;
  static FaultStats from_json(const JsonValue& value);
  /// Human-readable one-line summary ("12 failed (7 compile, ...), ...").
  std::string to_string() const;
};

/// One scheduled island death: rank `rank` of the distributed GA dies at
/// the start of generation `generation`. Kill plans make whole-rank failure
/// as deterministic as the per-evaluation fault oracle.
struct RankKill {
  int rank = 0;
  std::uint64_t generation = 0;

  friend bool operator==(const RankKill& a, const RankKill& b) {
    return a.rank == b.rank && a.generation == b.generation;
  }
};

/// An island-level recovery event (death, ring heal, elite adoption),
/// emitted by the GA and journaled by the checkpoint so a degraded run
/// resumes bit-identically.
struct IslandEvent {
  enum class Kind : std::uint8_t { kRankDeath = 0, kRingHeal, kEliteAdoption };

  Kind kind = Kind::kRankDeath;
  int rank = -1;  ///< who died / whose ring edge healed / who adopted
  std::uint64_t generation = 0;
  int peer = -1;  ///< the dead neighbour (heal/adoption); -1 for deaths
};

const char* island_event_kind_name(IslandEvent::Kind kind);
IslandEvent::Kind island_event_kind_from_name(const std::string& name);

/// Extracts the deterministic kill plan implied by journaled island events
/// (deduplicated): feeding it back into a fresh run replays the original
/// run's deaths without re-passing --kill-rank flags.
std::vector<RankKill> kill_plan_from_events(
    const std::vector<IslandEvent>& events);

/// The deterministic fault oracle scoped to one (stencil, seed): thin
/// wrapper folding the stencil identity into the gpusim::FaultModel key so
/// different stencils see independent fault patterns from the same seed.
/// Also carries the rank-kill plan for the distributed GA: each planned
/// (rank, generation) death fires exactly once per tune, in whichever GA
/// instance first reaches that generation on that rank.
class FaultInjector {
 public:
  FaultInjector(gpusim::FaultConfig config, const std::string& scope);

  const gpusim::FaultConfig& config() const { return model_.config(); }

  gpusim::FaultKind decide(std::uint64_t setting_key, int attempt) const {
    return model_.decide(scoped(setting_key), attempt);
  }
  double noise_factor(std::uint64_t setting_key,
                      std::uint64_t run_index) const {
    return model_.noise_factor(scoped(setting_key), run_index);
  }

  /// Installs the rank-kill schedule (deduplicated, order-normalized) and
  /// resets the fired state.
  void set_kill_plan(std::vector<RankKill> plan);
  const std::vector<RankKill>& kill_plan() const { return kill_plan_; }
  bool has_kill_plan() const { return !kill_plan_.empty(); }

  /// One-shot kill query: true the first time a planned (rank, generation)
  /// entry is reached, false on every later query. Safe to call from
  /// concurrent island threads.
  bool should_kill(int rank, std::uint64_t generation) const;

  /// Plan entries that have fired so far (for tests and summaries).
  std::size_t kills_fired() const;

 private:
  std::uint64_t scoped(std::uint64_t key) const {
    return hash_combine(scope_salt_, key);
  }

  gpusim::FaultModel model_;
  std::uint64_t scope_salt_;
  std::vector<RankKill> kill_plan_;
  mutable std::unique_ptr<std::atomic<bool>[]> kill_fired_;
};

}  // namespace cstuner::tuner
