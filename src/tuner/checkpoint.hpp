#pragma once
// Crash-safe checkpointing of a tuning run (docs/fault-tolerance.md).
//
// Two complementary artifacts live in the checkpoint directory:
//
//   journal.jsonl   An append-only log with one JSON line per *committed*
//                   evaluation (key, status, time bits, attempts, fault
//                   overhead). Appended in commit order — which the
//                   evaluator keeps deterministic — and flushed at every
//                   iteration mark, so a kill loses at most the current
//                   batch. A torn final line (killed mid-write) is detected
//                   and truncated on load.
//
//   snapshot.json   A periodic whole-state snapshot: RNG/seed identity,
//                   the performance dataset (bit-exact doubles), the
//                   quarantine list, and failure statistics. Written
//                   atomically (write temp + rename), so a reader always
//                   sees either the old or the new snapshot, never a torn
//                   one.
//
// Resume = memoized replay. Measurements recorded in the journal are
// served back to the evaluator instead of being re-simulated, while the
// tuner's deterministic control flow replays from its seed; the virtual
// clock, best-so-far, quarantine and statistics therefore evolve exactly
// as in the original run, and the continuation past the kill point is
// bit-identical to an uninterrupted run. The snapshot spares the resumed
// run the offline dataset collection and preserves the audit state.

#include <cstdint>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/json.hpp"
#include "io/vfs.hpp"
#include "tuner/dataset.hpp"
#include "tuner/fault.hpp"

namespace cstuner::tuner {

/// Typed wrapper for storage failures inside the checkpoint layer. Every
/// io::VfsError crossing the Checkpoint boundary is rethrown as this, so
/// callers (the serve session runner, the tune CLI) can degrade the one
/// affected run — mark the session failed, keep serving — without ever
/// confusing a disk problem with a tuning bug or poisoning shared
/// evaluator state.
class CheckpointError : public Error {
 public:
  using Error::Error;
};

/// One committed evaluation, as journaled. `time_bits` is the IEEE-754 bit
/// pattern of the result time (the bit pattern of +inf for failures), so
/// the round trip is exact; `overhead_ticks` is the fault overhead charged
/// at commit, in virtual picoseconds.
struct JournalEntry {
  std::uint64_t key = 0;
  EvalStatus status = EvalStatus::kOk;
  std::uint64_t time_bits = 0;
  std::uint8_t attempts = 0;
  std::int64_t overhead_ticks = 0;

  double time_ms() const;
  EvalResult to_result() const;
};

/// Owns the checkpoint directory: journal appends, atomic snapshots, and
/// loading both on resume. Writes are serialized internally, so the
/// evaluator may call append() from its (already commit-ordered) commit
/// path without extra locking.
class Checkpoint {
 public:
  /// Opens (and creates if needed) the checkpoint directory. Nothing is
  /// read; call load() first to resume. All I/O goes through `vfs`
  /// (defaulting to the real filesystem), so tests and the crash sweep can
  /// substitute a FaultVfs.
  explicit Checkpoint(std::string directory, io::Vfs* vfs = nullptr);
  ~Checkpoint();

  Checkpoint(const Checkpoint&) = delete;
  Checkpoint& operator=(const Checkpoint&) = delete;

  const std::string& directory() const { return directory_; }

  /// True if the journal file exists on disk. `cstuner tune --resume`
  /// refuses to run without one: silently starting a fresh run when the
  /// user asked to continue an old one would discard their intent.
  bool has_journal_file() const;
  /// The journal path (for error messages).
  std::string journal_file() const { return journal_path(); }

  /// Loads journal + snapshot from the directory. Tolerates a missing
  /// snapshot, a missing journal, and a torn journal tail (the file is
  /// truncated back to the last complete line before appends resume).
  /// Returns the number of journal entries recovered.
  std::size_t load();

  /// Journal entries recovered by load(), deduplicated by key (first
  /// occurrence wins; repeat encounters of a transient-failing setting
  /// re-serve the same deterministic outcome).
  const std::unordered_map<std::uint64_t, JournalEntry>& replay() const {
    return replay_;
  }

  /// Journal durability policy (--checkpoint-sync):
  ///   kBatch  appends buffer in memory until the next flush(), which
  ///           writes them without fsync — a kill loses at most the batch
  ///           since the last iteration mark (the historical behavior);
  ///   kEvery  every append is written AND fsync'd immediately — nothing
  ///           committed is ever lost, at one fsync per evaluation.
  /// Snapshots are fsync'd before publication under both policies.
  enum class SyncPolicy { kBatch, kEvery };
  void set_sync_policy(SyncPolicy policy);
  SyncPolicy sync_policy() const { return sync_policy_; }

  /// Appends one committed evaluation. Buffered; becomes durable at the
  /// next flush() (immediately under SyncPolicy::kEvery). Thread-safe:
  /// concurrent GA islands commit and journal island events from their own
  /// threads.
  void append(const JournalEntry& entry);

  /// Appends one island recovery event (rank death, ring heal, elite
  /// adoption) so a degraded run resumes bit-identically: on --resume the
  /// journaled deaths are folded back into the kill plan. Duplicate events
  /// (a resumed run replays its kills and re-emits them) are dropped.
  /// Thread-safe.
  void append_island_event(const IslandEvent& event);

  /// Island events recovered by load(), in journal order.
  const std::vector<IslandEvent>& island_events() const {
    return island_events_;
  }

  /// Flushes buffered journal lines to disk (called at iteration marks).
  /// Thread-safe.
  void flush();

  /// Registers the serialized performance dataset to embed in snapshots
  /// (CsTuner calls this once the dataset exists).
  void set_dataset_json(std::string dataset_json);
  bool has_dataset() const { return loaded_dataset_.has_value(); }
  /// Dataset recovered from a loaded snapshot, if any.
  const std::optional<PerfDataset>& loaded_dataset() const {
    return loaded_dataset_;
  }

  /// Registers the optimizer's serialized step state to embed in snapshots.
  /// The search driver (search/optimizer.cpp) refreshes this at every
  /// iteration boundary, just before the mark flushes the journal, so a
  /// published snapshot always carries a state at least as old as its last
  /// journaled evaluation — a restored optimizer replays forward from
  /// there, never backward past measurements it has already consumed.
  void set_optimizer_state_json(std::string state_json);
  /// Optimizer state recovered from a loaded snapshot, if any. Ports that
  /// resume by journal replay ignore it; the natively-checkpointable
  /// optimizers restore their populations/walkers from it.
  const std::optional<JsonValue>& loaded_optimizer_state() const {
    return loaded_optimizer_state_;
  }

  /// Atomically writes snapshot.json (write temp, fsync, rename). The
  /// previous good snapshot is preserved as snapshot.prev.json first, so a
  /// snapshot torn by a crash at any point — even one that slips past the
  /// rename barrier on a non-atomic filesystem — recovers to the last good
  /// state on load(). `evaluator_json` is the evaluator's serialized
  /// mutable state (quarantine, statistics, counters).
  void write_snapshot(const std::string& evaluator_json);

  /// Snapshot interval: write_snapshot is invoked by the evaluator every
  /// this many iteration marks.
  int snapshot_interval() const { return snapshot_interval_; }
  void set_snapshot_interval(int interval);

  /// Fault statistics recovered from a loaded snapshot (informational;
  /// replay rebuilds the live counters).
  const std::optional<FaultStats>& loaded_stats() const {
    return loaded_stats_;
  }

 private:
  std::string journal_path() const;
  std::string snapshot_path() const;
  std::string snapshot_prev_path() const;
  /// Parses one snapshot file into loaded_dataset_/loaded_stats_; returns
  /// false (mutating nothing) when the file is absent, torn or corrupt.
  bool try_load_snapshot(const std::string& path);
  /// Writes pending journal lines with writer_mutex_ held; fsyncs when
  /// `sync` is set.
  void flush_locked(bool sync);

  std::string directory_;
  io::Vfs* vfs_;
  int snapshot_interval_ = 8;
  SyncPolicy sync_policy_ = SyncPolicy::kBatch;
  std::string dataset_json_ = "null";
  std::string optimizer_state_json_ = "null";

  std::unordered_map<std::uint64_t, JournalEntry> replay_;
  std::vector<IslandEvent> island_events_;
  /// Every island event this checkpoint knows about (loaded or appended),
  /// keyed by (kind, rank, generation, peer) — the dedup set behind
  /// append_island_event.
  std::set<std::tuple<int, int, std::uint64_t, int>> known_events_;
  std::optional<PerfDataset> loaded_dataset_;
  std::optional<FaultStats> loaded_stats_;
  std::optional<JsonValue> loaded_optimizer_state_;

  // Journal write half: buffered lines + the open append stream. The mutex
  // serializes appends/flushes from concurrent island threads.
  std::mutex writer_mutex_;
  struct Writer;
  Writer* writer_;
};

/// Bit-exact JSON round trip for the performance dataset: times and
/// metrics are stored as IEEE-754 bit patterns, settings as value rows.
std::string serialize_dataset(const PerfDataset& dataset);
PerfDataset parse_dataset(const JsonValue& value);

}  // namespace cstuner::tuner
