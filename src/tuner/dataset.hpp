#pragma once
// Performance-dataset collection (§IV-A): csTuner randomly samples a small
// number of settings (128 in the paper's evaluation) and profiles each for
// execution time plus GPU metrics. The dataset feeds parameter grouping,
// metric combination and PMNF fitting. Collection happens offline, so it is
// not charged to the search-time clock (§V-F).

#include <vector>

#include "common/thread_pool.hpp"
#include "gpusim/simulator.hpp"
#include "regress/matrix.hpp"
#include "space/search_space.hpp"
#include "tuner/fault.hpp"

namespace cstuner::tuner {

struct PerfDataset {
  std::vector<space::Setting> settings;
  std::vector<double> times_ms;
  /// settings.size() x kMetricCount
  regress::Matrix metrics;

  std::size_t size() const { return settings.size(); }

  /// Index of the fastest sampled setting.
  std::size_t best_index() const;

  /// settings.size() x kParamCount raw feature matrix (PMNF encoding).
  regress::Matrix feature_matrix() const;

  /// One metric column.
  std::vector<double> metric_column(std::size_t metric) const;
};

/// Samples `count` distinct valid settings and profiles them. Profiling
/// fans across `pool` when given (row i's measurements depend only on i, so
/// the dataset is bit-identical for any worker count); nullptr runs serial.
/// When `injector` is armed, settings whose first profiling attempt faults
/// are dropped before profiling — offline collection does not retry, it
/// simply works with the survivors — so the dataset shrinks but stays
/// deterministic (the drop decision is a pure function of the setting).
PerfDataset collect_dataset(const space::SearchSpace& space,
                            const gpusim::Simulator& simulator,
                            std::size_t count, Rng& rng,
                            ThreadPool* pool = nullptr,
                            const FaultInjector* injector = nullptr);

/// Profiles an externally chosen set of settings (parallel across `pool`),
/// dropping settings that fault under `injector` as in collect_dataset.
PerfDataset profile_settings(const space::SearchSpace& space,
                             const gpusim::Simulator& simulator,
                             const std::vector<space::Setting>& settings,
                             ThreadPool* pool = nullptr,
                             const FaultInjector* injector = nullptr);

}  // namespace cstuner::tuner
