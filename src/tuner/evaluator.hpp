#pragma once
// The evaluation engine every auto-tuner drives. It owns the
// (setting -> measured time) oracle, a result cache, the best-so-far state,
// and a *virtual clock* that charges each evaluation what it would cost on
// real hardware: per-variant compile time plus timing runs plus launch
// overhead. Iso-time comparisons (Figs. 9-11) read this clock.

#include <limits>
#include <optional>
#include <unordered_map>
#include <vector>

#include "gpusim/simulator.hpp"
#include "space/search_space.hpp"
#include "tuner/trace.hpp"

namespace cstuner::tuner {

struct EvalCosts {
  double compile_s = 0.25;        ///< nvcc cost per new kernel variant
  int runs_per_eval = 3;          ///< timing repetitions per variant
  double launch_overhead_s = 2e-3;
};

class Evaluator {
 public:
  Evaluator(const gpusim::Simulator& simulator,
            const space::SearchSpace& space, EvalCosts costs = {},
            std::uint64_t seed = 1);

  /// Measures a setting (mean of runs_per_eval noisy runs); charges the
  /// virtual clock on first evaluation, serves repeats from cache for free.
  /// Returns infinity for invalid settings (callers should avoid them).
  double evaluate(const space::Setting& setting);

  /// Marks the end of one tuner iteration in the trace (iso-iteration data).
  void mark_iteration();

  double virtual_time_s() const { return virtual_time_s_; }
  std::size_t unique_evaluations() const { return unique_evals_; }
  std::size_t iterations() const { return iterations_; }

  double best_time_ms() const { return best_time_ms_; }
  const std::optional<space::Setting>& best_setting() const {
    return best_setting_;
  }

  const ConvergenceTrace& trace() const { return trace_; }

  const space::SearchSpace& space() const { return space_; }
  const gpusim::Simulator& simulator() const { return simulator_; }

  /// Resets clock, cache, best and trace (fresh tuning run).
  void reset();

 private:
  const gpusim::Simulator& simulator_;
  const space::SearchSpace& space_;
  EvalCosts costs_;
  std::uint64_t run_salt_;

  std::unordered_map<std::uint64_t, double> cache_;
  double virtual_time_s_ = 0.0;
  std::size_t unique_evals_ = 0;
  std::size_t iterations_ = 0;
  double best_time_ms_ = std::numeric_limits<double>::infinity();
  std::optional<space::Setting> best_setting_;
  ConvergenceTrace trace_;
};

/// Stop condition shared by all tuners: iteration cap (iso-iteration mode)
/// and/or virtual-time budget (iso-time mode).
struct StopCriteria {
  std::size_t max_iterations = std::numeric_limits<std::size_t>::max();
  double max_virtual_seconds = std::numeric_limits<double>::infinity();

  bool reached(const Evaluator& eval) const {
    return eval.iterations() >= max_iterations ||
           eval.virtual_time_s() >= max_virtual_seconds;
  }
};

/// Abstract auto-tuner: csTuner and the three baselines implement this.
class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;
  /// Runs until the stop criteria are met or the tuner exhausts its
  /// candidate pool (the paper's "evaluated completely" case in Fig. 8).
  virtual void tune(Evaluator& evaluator, const StopCriteria& stop) = 0;
};

}  // namespace cstuner::tuner
