#pragma once
// The evaluation engine every auto-tuner drives. It owns the
// (setting -> measured outcome) oracle, a result cache, the best-so-far
// state, and a *virtual clock* that charges each evaluation what it would
// cost on real hardware: per-variant compile time plus timing runs plus
// launch overhead. Iso-time comparisons (Figs. 9-11) read this clock.
//
// Evaluations return EvalResult, not bare doubles: real tuning runs lose a
// large fraction of candidates to compile failures, crashes, hangs and
// flaky profiler readings, and the engine absorbs those through a
// deterministic fault pipeline (docs/fault-tolerance.md):
//   - a seedable FaultInjector decides, purely from (seed, setting,
//     attempt), whether an attempt compiles, crashes, hangs or misreads;
//   - transient faults are retried with exponential backoff charged to the
//     virtual clock, bounded by RetryPolicy (attempts, per-eval deadline,
//     per-tune fault budget);
//   - permanent failures are cached and quarantined immediately; settings
//     that repeatedly exhaust their retries join the quarantine list and
//     are answered with a penalty result without burning measurements;
//   - an optional Checkpoint journals every committed evaluation and
//     snapshots state periodically; on resume, journaled measurements are
//     replayed so the continuation is bit-identical to an unkilled run.
//
// The engine is thread-safe and batch-parallel (docs/threading.md):
//   - the result cache is sharded across kCacheShards mutex-guarded maps,
//     so concurrent lookups rarely contend;
//   - the virtual clock accumulates integer picosecond ticks in an atomic.
//     Integer addition is associative, so the clock reads bit-identically
//     no matter which thread charged which evaluation first;
//   - best-so-far and the convergence trace update under one small result
//     mutex, keeping the trace monotone under concurrency;
//   - evaluate_batch() measures a whole batch across the thread pool, then
//     commits results in input order, so a batch is bit-identical to the
//     same calls made serially — with 1 worker or 16;
//   - fault decisions are pure functions of the setting key, and fault
//     charges for one setting are capped at the quarantine threshold, so
//     totals stay commit-order independent even across concurrent batches.
// Measurement noise keys off hash_combine(run_salt_, setting.hash()), which
// is evaluation-order independent; that is what makes the parallel engine
// deterministic at all.

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/thread_pool.hpp"
#include "gpusim/simulator.hpp"
#include "space/search_space.hpp"
#include "tuner/checkpoint.hpp"
#include "tuner/fault.hpp"
#include "tuner/trace.hpp"

namespace cstuner::tuner {

struct EvalCosts {
  double compile_s = 0.25;        ///< nvcc cost per new kernel variant
  int runs_per_eval = 3;          ///< timing repetitions per variant
  double launch_overhead_s = 2e-3;
};

class Evaluator {
 public:
  Evaluator(const gpusim::Simulator& simulator,
            const space::SearchSpace& space, EvalCosts costs = {},
            std::uint64_t seed = 1, ThreadPool* pool = &ThreadPool::global());
  /// Detaches this engine's virtual clock from the span tracer.
  ~Evaluator();

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Measures a setting and returns the full outcome (status, time,
  /// attempts). Charges the virtual clock on first evaluation; repeats are
  /// served from cache (successes and permanent failures) or from the
  /// quarantine list for free. Thread-safe: concurrent callers racing on
  /// the same new setting charge the clock exactly once.
  EvalResult evaluate_result(const space::Setting& setting);

  /// Convenience wrapper: evaluate_result().time_or_inf(). Returns infinity
  /// for invalid, failed and quarantined settings.
  double evaluate(const space::Setting& setting);

  /// Evaluates a batch of candidates, fanning the uncached measurements
  /// across the thread pool in fixed-size chunks. Each chunk runs the pure
  /// decision pipeline per slot, then profiles every slot that reached a
  /// measurement through the simulator's batch oracle (profile_times) and
  /// applies the per-run noise. Chunk boundaries depend only on the batch
  /// size, and results (cache, clock, best, trace) are committed in input
  /// order afterwards, so the outcome is bit-identical to evaluating the
  /// batch serially, for any worker count (docs/threading.md,
  /// docs/performance.md).
  /// Exception-safe: if a slot throws, every other slot is still probed and
  /// committed (cache, clock, journal) before the lowest-index exception
  /// propagates — in-flight work is drained, not leaked.
  std::vector<EvalResult> evaluate_batch(
      std::span<const space::Setting> settings);

  /// Sizes the result-cache shards for an expected number of unique
  /// settings (typically the sampled universe size), so the flat tables
  /// never rehash mid-tune. Call before tuning; safe to skip (shards grow
  /// on demand) and to call concurrently with nothing in flight.
  void reserve_cache(std::size_t expected_unique);

  /// Marks the end of one tuner iteration in the trace (iso-iteration
  /// data); flushes the checkpoint journal and snapshots periodically.
  void mark_iteration();

  double virtual_time_s() const {
    return static_cast<double>(
               virtual_time_ticks_.load(std::memory_order_acquire)) /
           kTicksPerSecond;
  }
  std::size_t unique_evaluations() const {
    return unique_evals_.load(std::memory_order_acquire);
  }
  std::size_t iterations() const {
    return iterations_.load(std::memory_order_acquire);
  }

  double best_time_ms() const;
  /// Stable only while no evaluation is in flight (read it after a batch or
  /// a tuning run, not during one).
  const std::optional<space::Setting>& best_setting() const {
    return best_setting_;
  }

  const ConvergenceTrace& trace() const { return trace_; }

  const space::SearchSpace& space() const { return space_; }
  const gpusim::Simulator& simulator() const { return simulator_; }

  /// Worker pool used by evaluate_batch; nullptr runs batches inline.
  ThreadPool* thread_pool() const { return pool_; }
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  // --- Fault pipeline -----------------------------------------------------

  /// Arms fault injection. `scope` (typically the stencil name) salts the
  /// fault decisions so different stencils fail independently under the
  /// same seed. A config with no rates disarms injection.
  void set_fault_injection(const gpusim::FaultConfig& config,
                           const std::string& scope);
  bool fault_injection_armed() const { return injector_.has_value(); }
  /// The armed injector (nullptr when injection is off) — shared with the
  /// offline dataset collection so it sees the same fault pattern.
  const FaultInjector* fault_injector() const {
    return injector_.has_value() ? &*injector_ : nullptr;
  }

  /// Schedules deterministic island deaths for the distributed GA
  /// ("kill rank r at generation g"). Arms a zero-rate injector when fault
  /// injection is otherwise off, so a kill plan works without eval faults;
  /// when injection is armed, call set_fault_injection first (it resets
  /// the injector, dropping any plan installed earlier).
  void set_kill_plan(std::vector<RankKill> plan, const std::string& scope);

  void set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const { return policy_; }

  /// Snapshot of the failure counters (fills fault_overhead_s from the
  /// tick-exact accumulator).
  FaultStats fault_stats() const;

  /// True when the setting key sits on the quarantine list; searches use
  /// this to skip repeat offenders without burning batch slots.
  bool is_quarantined(std::uint64_t setting_key) const;
  /// Quarantined keys in sorted order (deterministic for snapshots/tests).
  std::vector<std::uint64_t> quarantined_keys() const;

  // --- Cooperative cancellation / deadlines -------------------------------

  /// Arms cooperative cancellation: while `flag` (owned by the caller —
  /// typically a serve session; never mutated here) reads true, evaluate /
  /// evaluate_batch throw CancelledError *before* touching any shared
  /// state. The cache, clock, quarantine and statistics are left exactly as
  /// the last completed call left them, so other sessions sharing this
  /// engine are unaffected and the cancelled run can resume later. A batch
  /// that has already started always commits whole (the cancellation
  /// granularity is one batch). nullptr disarms.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }
  const std::atomic<bool>* cancel_flag() const { return cancel_flag_; }

  /// Per-request deadline charged to the virtual clock: once
  /// virtual_time_s() has reached `seconds`, the next evaluation throws
  /// DeadlineError. Because the comparison is against the deterministic
  /// virtual clock — not wall time — the expiry point is bit-identical
  /// across worker counts and across checkpoint/resume cycles. Infinity
  /// (the default) disables.
  void set_virtual_deadline(double seconds) { virtual_deadline_s_ = seconds; }
  double virtual_deadline_s() const { return virtual_deadline_s_; }

  // --- Checkpoint/resume --------------------------------------------------

  /// Attaches a checkpoint (non-owning; may be nullptr to detach). Journal
  /// entries already loaded into the checkpoint replay future evaluations
  /// of the same settings; call before tuning starts.
  void set_checkpoint(Checkpoint* checkpoint);
  Checkpoint* checkpoint() const { return checkpoint_; }

  /// Serializes the mutable engine state (stats, quarantine, counters) as
  /// one JSON object — the "evaluator" half of a snapshot.
  std::string serialize_state() const;

  /// Debug mode: before the first (cache-miss) measurement of a valid
  /// setting, run the static analyzer over the kernel the codegen layer
  /// would emit for it and throw ConstraintError when any pass reports an
  /// error. Catches codegen/constraint drift at the point of use instead of
  /// ten thousand evaluations later. Off by default (it generates and parses
  /// the kernel source per unique setting).
  void set_debug_precheck(bool enabled) { debug_precheck_ = enabled; }
  bool debug_precheck() const { return debug_precheck_; }

  /// Resets clock, cache, best, trace, quarantine and fault statistics
  /// (fresh tuning run); keeps the injector, policy and checkpoint
  /// attachment. Not safe concurrently with evaluations.
  void reset();

 private:
  /// Virtual-clock resolution: 1 tick = 1 ps. Costs round to a tick, so
  /// ~2^62 ps (~50 virtual days) fit before overflow — far beyond any run.
  static constexpr double kTicksPerSecond = 1e12;
  static constexpr std::size_t kCacheShards = 16;
  /// evaluate_batch probe granularity. Chunking is by batch position only —
  /// never by worker count — so the chunk a slot lands in (and therefore
  /// every bit of the result) is identical with 0 or 16 workers.
  static constexpr std::size_t kProbeChunk = 64;

  struct Shard {
    std::mutex mutex;
    /// Open-addressing flat table (common/flat_hash.hpp): setting keys are
    /// already avalanched 64-bit hashes, so identity hashing plus linear
    /// probing beats unordered_map's node allocations on the hot path.
    FlatHashMap<EvalResult> map;
  };

  /// Outcome of the pure (parallel-phase) half of one evaluation.
  struct Probe {
    enum class State : std::uint8_t {
      kCached,      ///< served from the result cache; no commit work
      kQuarantine,  ///< quarantine list answered; commit counts the hit
      kInvalid,     ///< constraint-invalid; never measured, never charged
      kMeasured,    ///< measured (or replayed); commit charges and caches
    };
    State state = State::kInvalid;
    EvalResult result;
    std::int64_t overhead_ticks = 0;  ///< fault overhead of the ladder
    bool replayed = false;            ///< served from the resume journal
    /// The ladder landed on a real measurement: result.time_ms is not yet
    /// filled in; the batch oracle supplies the noise-free profile time and
    /// finish_measure() applies the run noise.
    bool needs_time = false;
    /// Resource estimate the validity check handed back; reusable by the
    /// batch oracle when the space's limits are the defaults the simulator
    /// assumes (usage_reusable_).
    space::ResourceUsage usage;
    /// The batch commit pre-pass already ran this slot's cache step (under
    /// a shard lock held once for the whole batch); commit_one must not
    /// repeat it.
    bool cache_done = false;
  };

  /// Batch-local aggregation of the clean-success commit charges. Clock
  /// ticks and counters are integers, so summing them locally and flushing
  /// once per batch gives bit-identical totals to per-eval fetch_adds —
  /// the flush just happens before anything (the convergence trace) reads
  /// them.
  struct CommitTotals {
    std::int64_t virtual_ticks = 0;
    std::uint64_t evals = 0;
  };

  static std::size_t shard_index(std::uint64_t key) {
    // The low bits feed the flat table's probe already; shard on high ones.
    return (key >> 56) & (kCacheShards - 1);
  }
  Shard& shard_for(std::uint64_t key) { return shards_[shard_index(key)]; }
  /// Throws CancelledError/DeadlineError at the evaluation entry points;
  /// mutates nothing.
  void check_cancelled() const;
  bool cache_lookup(std::uint64_t key, EvalResult& value_out);
  /// Bumps the per-shard and total cache-hit counters (no-op when the
  /// observability layer is compiled out). Shared by the per-slot lookup
  /// and the shard-grouped batch lookup.
  static void count_cache_hits(std::size_t shard_idx, std::uint64_t hits);
  /// Debug-mode static analysis of the kernel for `setting`; throws
  /// ConstraintError when the analyzer reports an error-severity diagnostic.
  void precheck(const space::Setting& setting) const;
  /// Pure measurement from the noise-free profile time: mean of
  /// runs_per_eval deterministic noise draws (plus the injector's extra
  /// per-run noise when armed). Bit-identical to the historical
  /// measure-per-run path because the simulator's noise chain is seeded
  /// from (arch, stencil, key, run) only.
  double noisy_mean_ms(std::uint64_t key, double noise_free_ms) const;
  /// Fills probe.result.time_ms for a needs_time probe.
  void finish_measure(std::uint64_t key, double noise_free_ms,
                      Probe& probe) const;
  /// The retry ladder: walks attempts through the fault oracle, accruing
  /// backoff/deadline overhead, until a measurement lands (needs_time set;
  /// the caller fills the time from the batch oracle) or attempts run out.
  /// Pure — safe to run in the parallel phase.
  Probe run_attempt_ladder(std::uint64_t key, int max_attempts) const;
  /// Pure phase-1 work for one setting: cache probe, quarantine probe,
  /// validity, replay lookup, then the attempt ladder.
  Probe probe_one(std::uint64_t key, const space::Setting& setting,
                  int max_attempts);
  /// probe_one minus the cache step, for callers (the batch probe phase)
  /// that already resolved the cache under a shard-grouped lock.
  Probe probe_uncached(std::uint64_t key, const space::Setting& setting,
                       int max_attempts);
  /// Phase-2 commit for one probed setting: first-writer-wins cache insert,
  /// quarantine accounting (charges capped at the quarantine threshold per
  /// key, so clock totals are commit-order independent), clock charge,
  /// best/trace update, journal append. Runs in input order within a batch.
  /// With `totals`, the clean-success clock/counter charges accumulate
  /// there instead of hitting the shared atomics per eval; any path that
  /// reads the shared state (trace/best updates) flushes first.
  EvalResult commit_one(std::uint64_t key, const space::Setting& setting,
                        const Probe& probe, CommitTotals* totals = nullptr);
  /// Adds the accumulated totals to the shared clock/counters and resets
  /// them.
  void flush_commit_totals(CommitTotals& totals);
  /// Retry allowance for the next evaluation: collapses to one attempt once
  /// the per-tune fault budget is spent.
  int effective_max_attempts() const;

  /// Rounds a cost to whole clock ticks (all charges are tick-quantized so
  /// accumulation order cannot change the total).
  static std::int64_t to_ticks(double seconds);
  /// Virtual-clock charge of one successful measurement (compile plus
  /// runs_per_eval timed launches), in ticks. Shared by commit_one and the
  /// batch commit fast path so the two charge identically.
  std::int64_t success_cost_ticks(double time_ms) const {
    return to_ticks(costs_.compile_s +
                    costs_.runs_per_eval *
                        (time_ms / 1e3 + costs_.launch_overhead_s));
  }

  const gpusim::Simulator& simulator_;
  const space::SearchSpace& space_;
  /// Hoisted per-(arch, stencil) model constants — owned by the simulator's
  /// invariants cache, resolved once here so the per-setting hot path never
  /// re-fingerprints the spec.
  const gpusim::StencilInvariants* inv_;
  EvalCosts costs_;
  std::uint64_t run_salt_;
  ThreadPool* pool_;
  /// The space's resource limits equal the defaults the simulator profiles
  /// under, so the validity check's resource estimate is bit-identical to
  /// the one the oracle would recompute — hand it over instead.
  bool usage_reusable_ = false;
  bool debug_precheck_ = false;

  std::optional<FaultInjector> injector_;
  RetryPolicy policy_;
  Checkpoint* checkpoint_ = nullptr;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  double virtual_deadline_s_ = std::numeric_limits<double>::infinity();

  std::vector<Shard> shards_{kCacheShards};
  std::atomic<std::int64_t> virtual_time_ticks_{0};
  std::atomic<std::size_t> unique_evals_{0};
  std::atomic<std::size_t> iterations_{0};
  std::atomic<std::int64_t> fault_overhead_ticks_{0};

  mutable std::mutex fault_mutex_;  // guards the three fields below
  FaultStats stats_;
  std::unordered_map<std::uint64_t, int> fail_counts_;
  std::unordered_set<std::uint64_t> quarantine_;
  /// quarantine_.size(), readable without the fault mutex. Zero (the
  /// fault-free steady state) lets probe_one skip the quarantine lock
  /// entirely; written only while holding fault_mutex_.
  std::atomic<std::size_t> quarantine_count_{0};

  mutable std::mutex result_mutex_;  // guards the three fields below
  double best_time_ms_ = std::numeric_limits<double>::infinity();
  std::optional<space::Setting> best_setting_;
  ConvergenceTrace trace_;
  /// Bit pattern of best_time_ms_, readable without the result mutex.
  /// commit_one consults it to skip the lock for results that cannot
  /// improve the best; written only while holding result_mutex_.
  std::atomic<std::uint64_t> best_bits_{0x7ff0000000000000ULL};  // +inf
};

/// Stop condition shared by all tuners: iteration cap (iso-iteration mode)
/// and/or virtual-time budget (iso-time mode).
struct StopCriteria {
  std::size_t max_iterations = std::numeric_limits<std::size_t>::max();
  double max_virtual_seconds = std::numeric_limits<double>::infinity();

  bool reached(const Evaluator& eval) const {
    return eval.iterations() >= max_iterations ||
           eval.virtual_time_s() >= max_virtual_seconds;
  }
};

/// Abstract auto-tuner: csTuner and the three baselines implement this.
class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;
  /// Runs until the stop criteria are met or the tuner exhausts its
  /// candidate pool (the paper's "evaluated completely" case in Fig. 8).
  virtual void tune(Evaluator& evaluator, const StopCriteria& stop) = 0;
};

}  // namespace cstuner::tuner
