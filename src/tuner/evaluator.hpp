#pragma once
// The evaluation engine every auto-tuner drives. It owns the
// (setting -> measured outcome) oracle, a result cache, the best-so-far
// state, and a *virtual clock* that charges each evaluation what it would
// cost on real hardware: per-variant compile time plus timing runs plus
// launch overhead. Iso-time comparisons (Figs. 9-11) read this clock.
//
// Evaluations return EvalResult, not bare doubles: real tuning runs lose a
// large fraction of candidates to compile failures, crashes, hangs and
// flaky profiler readings, and the engine absorbs those through a
// deterministic fault pipeline (docs/fault-tolerance.md):
//   - a seedable FaultInjector decides, purely from (seed, setting,
//     attempt), whether an attempt compiles, crashes, hangs or misreads;
//   - transient faults are retried with exponential backoff charged to the
//     virtual clock, bounded by RetryPolicy (attempts, per-eval deadline,
//     per-tune fault budget);
//   - permanent failures are cached and quarantined immediately; settings
//     that repeatedly exhaust their retries join the quarantine list and
//     are answered with a penalty result without burning measurements;
//   - an optional Checkpoint journals every committed evaluation and
//     snapshots state periodically; on resume, journaled measurements are
//     replayed so the continuation is bit-identical to an unkilled run.
//
// The engine is thread-safe and batch-parallel (docs/threading.md):
//   - the result cache is sharded across kCacheShards mutex-guarded maps,
//     so concurrent lookups rarely contend;
//   - the virtual clock accumulates integer picosecond ticks in an atomic.
//     Integer addition is associative, so the clock reads bit-identically
//     no matter which thread charged which evaluation first;
//   - best-so-far and the convergence trace update under one small result
//     mutex, keeping the trace monotone under concurrency;
//   - evaluate_batch() measures a whole batch across the thread pool, then
//     commits results in input order, so a batch is bit-identical to the
//     same calls made serially — with 1 worker or 16;
//   - fault decisions are pure functions of the setting key, and fault
//     charges for one setting are capped at the quarantine threshold, so
//     totals stay commit-order independent even across concurrent batches.
// Measurement noise keys off hash_combine(run_salt_, setting.hash()), which
// is evaluation-order independent; that is what makes the parallel engine
// deterministic at all.

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/thread_pool.hpp"
#include "gpusim/simulator.hpp"
#include "space/search_space.hpp"
#include "tuner/checkpoint.hpp"
#include "tuner/fault.hpp"
#include "tuner/trace.hpp"

namespace cstuner::tuner {

struct EvalCosts {
  double compile_s = 0.25;        ///< nvcc cost per new kernel variant
  int runs_per_eval = 3;          ///< timing repetitions per variant
  double launch_overhead_s = 2e-3;
};

class Evaluator {
 public:
  Evaluator(const gpusim::Simulator& simulator,
            const space::SearchSpace& space, EvalCosts costs = {},
            std::uint64_t seed = 1, ThreadPool* pool = &ThreadPool::global());
  /// Detaches this engine's virtual clock from the span tracer.
  ~Evaluator();

  Evaluator(const Evaluator&) = delete;
  Evaluator& operator=(const Evaluator&) = delete;

  /// Measures a setting and returns the full outcome (status, time,
  /// attempts). Charges the virtual clock on first evaluation; repeats are
  /// served from cache (successes and permanent failures) or from the
  /// quarantine list for free. Thread-safe: concurrent callers racing on
  /// the same new setting charge the clock exactly once.
  EvalResult evaluate_result(const space::Setting& setting);

  /// Convenience wrapper: evaluate_result().time_or_inf(). Returns infinity
  /// for invalid, failed and quarantined settings.
  double evaluate(const space::Setting& setting);

  /// Evaluates a batch of candidates, fanning the uncached measurements
  /// across the thread pool. Results (cache, clock, best, trace) are
  /// committed in input order after measurement, so the outcome is
  /// bit-identical to evaluating the batch serially, for any worker count.
  /// Exception-safe: if a measurement throws, every completed slot is still
  /// committed (cache, clock, journal) before the exception propagates —
  /// in-flight work is drained, not leaked.
  std::vector<EvalResult> evaluate_batch(
      std::span<const space::Setting> settings);

  /// Marks the end of one tuner iteration in the trace (iso-iteration
  /// data); flushes the checkpoint journal and snapshots periodically.
  void mark_iteration();

  double virtual_time_s() const {
    return static_cast<double>(
               virtual_time_ticks_.load(std::memory_order_acquire)) /
           kTicksPerSecond;
  }
  std::size_t unique_evaluations() const {
    return unique_evals_.load(std::memory_order_acquire);
  }
  std::size_t iterations() const {
    return iterations_.load(std::memory_order_acquire);
  }

  double best_time_ms() const;
  /// Stable only while no evaluation is in flight (read it after a batch or
  /// a tuning run, not during one).
  const std::optional<space::Setting>& best_setting() const {
    return best_setting_;
  }

  const ConvergenceTrace& trace() const { return trace_; }

  const space::SearchSpace& space() const { return space_; }
  const gpusim::Simulator& simulator() const { return simulator_; }

  /// Worker pool used by evaluate_batch; nullptr runs batches inline.
  ThreadPool* thread_pool() const { return pool_; }
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  // --- Fault pipeline -----------------------------------------------------

  /// Arms fault injection. `scope` (typically the stencil name) salts the
  /// fault decisions so different stencils fail independently under the
  /// same seed. A config with no rates disarms injection.
  void set_fault_injection(const gpusim::FaultConfig& config,
                           const std::string& scope);
  bool fault_injection_armed() const { return injector_.has_value(); }
  /// The armed injector (nullptr when injection is off) — shared with the
  /// offline dataset collection so it sees the same fault pattern.
  const FaultInjector* fault_injector() const {
    return injector_.has_value() ? &*injector_ : nullptr;
  }

  /// Schedules deterministic island deaths for the distributed GA
  /// ("kill rank r at generation g"). Arms a zero-rate injector when fault
  /// injection is otherwise off, so a kill plan works without eval faults;
  /// when injection is armed, call set_fault_injection first (it resets
  /// the injector, dropping any plan installed earlier).
  void set_kill_plan(std::vector<RankKill> plan, const std::string& scope);

  void set_retry_policy(const RetryPolicy& policy);
  const RetryPolicy& retry_policy() const { return policy_; }

  /// Snapshot of the failure counters (fills fault_overhead_s from the
  /// tick-exact accumulator).
  FaultStats fault_stats() const;

  /// True when the setting key sits on the quarantine list; searches use
  /// this to skip repeat offenders without burning batch slots.
  bool is_quarantined(std::uint64_t setting_key) const;
  /// Quarantined keys in sorted order (deterministic for snapshots/tests).
  std::vector<std::uint64_t> quarantined_keys() const;

  // --- Checkpoint/resume --------------------------------------------------

  /// Attaches a checkpoint (non-owning; may be nullptr to detach). Journal
  /// entries already loaded into the checkpoint replay future evaluations
  /// of the same settings; call before tuning starts.
  void set_checkpoint(Checkpoint* checkpoint);
  Checkpoint* checkpoint() const { return checkpoint_; }

  /// Serializes the mutable engine state (stats, quarantine, counters) as
  /// one JSON object — the "evaluator" half of a snapshot.
  std::string serialize_state() const;

  /// Debug mode: before the first (cache-miss) measurement of a valid
  /// setting, run the static analyzer over the kernel the codegen layer
  /// would emit for it and throw ConstraintError when any pass reports an
  /// error. Catches codegen/constraint drift at the point of use instead of
  /// ten thousand evaluations later. Off by default (it generates and parses
  /// the kernel source per unique setting).
  void set_debug_precheck(bool enabled) { debug_precheck_ = enabled; }
  bool debug_precheck() const { return debug_precheck_; }

  /// Resets clock, cache, best, trace, quarantine and fault statistics
  /// (fresh tuning run); keeps the injector, policy and checkpoint
  /// attachment. Not safe concurrently with evaluations.
  void reset();

 private:
  /// Virtual-clock resolution: 1 tick = 1 ps. Costs round to a tick, so
  /// ~2^62 ps (~50 virtual days) fit before overflow — far beyond any run.
  static constexpr double kTicksPerSecond = 1e12;
  static constexpr std::size_t kCacheShards = 16;

  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, EvalResult> map;
  };

  /// Outcome of the pure (parallel-phase) half of one evaluation.
  struct Probe {
    enum class State : std::uint8_t {
      kCached,      ///< served from the result cache; no commit work
      kQuarantine,  ///< quarantine list answered; commit counts the hit
      kInvalid,     ///< constraint-invalid; never measured, never charged
      kMeasured,    ///< measured (or replayed); commit charges and caches
    };
    State state = State::kInvalid;
    EvalResult result;
    std::int64_t overhead_ticks = 0;  ///< fault overhead of the ladder
    bool replayed = false;            ///< served from the resume journal
  };

  Shard& shard_for(std::uint64_t key) {
    // The low bits feed the unordered_map already; shard on higher ones.
    return shards_[(key >> 56) & (kCacheShards - 1)];
  }
  bool cache_lookup(std::uint64_t key, EvalResult& value_out);
  /// Debug-mode static analysis of the kernel for `setting`; throws
  /// ConstraintError when the analyzer reports an error-severity diagnostic.
  void precheck(const space::Setting& setting) const;
  /// Pure measurement: mean of runs_per_eval noisy simulator runs (with the
  /// injector's extra per-run noise when armed).
  double measure(std::uint64_t key, const space::Setting& setting) const;
  /// The retry ladder: walks attempts through the fault oracle, accruing
  /// backoff/deadline overhead, until a measurement lands or attempts run
  /// out. Pure — safe to run in the parallel phase.
  Probe run_attempt_ladder(std::uint64_t key, const space::Setting& setting,
                           int max_attempts) const;
  /// Pure phase-1 work for one setting: cache probe, quarantine probe,
  /// validity, replay lookup, then the attempt ladder.
  Probe probe_one(std::uint64_t key, const space::Setting& setting,
                  int max_attempts);
  /// Phase-2 commit for one probed setting: first-writer-wins cache insert,
  /// quarantine accounting (charges capped at the quarantine threshold per
  /// key, so clock totals are commit-order independent), clock charge,
  /// best/trace update, journal append. Runs in input order within a batch.
  EvalResult commit_one(std::uint64_t key, const space::Setting& setting,
                        const Probe& probe);
  /// Retry allowance for the next evaluation: collapses to one attempt once
  /// the per-tune fault budget is spent.
  int effective_max_attempts() const;

  /// Rounds a cost to whole clock ticks (all charges are tick-quantized so
  /// accumulation order cannot change the total).
  static std::int64_t to_ticks(double seconds);

  const gpusim::Simulator& simulator_;
  const space::SearchSpace& space_;
  EvalCosts costs_;
  std::uint64_t run_salt_;
  ThreadPool* pool_;
  bool debug_precheck_ = false;

  std::optional<FaultInjector> injector_;
  RetryPolicy policy_;
  Checkpoint* checkpoint_ = nullptr;

  std::vector<Shard> shards_{kCacheShards};
  std::atomic<std::int64_t> virtual_time_ticks_{0};
  std::atomic<std::size_t> unique_evals_{0};
  std::atomic<std::size_t> iterations_{0};
  std::atomic<std::int64_t> fault_overhead_ticks_{0};

  mutable std::mutex fault_mutex_;  // guards the three fields below
  FaultStats stats_;
  std::unordered_map<std::uint64_t, int> fail_counts_;
  std::unordered_set<std::uint64_t> quarantine_;

  mutable std::mutex result_mutex_;  // guards the three fields below
  double best_time_ms_ = std::numeric_limits<double>::infinity();
  std::optional<space::Setting> best_setting_;
  ConvergenceTrace trace_;
};

/// Stop condition shared by all tuners: iteration cap (iso-iteration mode)
/// and/or virtual-time budget (iso-time mode).
struct StopCriteria {
  std::size_t max_iterations = std::numeric_limits<std::size_t>::max();
  double max_virtual_seconds = std::numeric_limits<double>::infinity();

  bool reached(const Evaluator& eval) const {
    return eval.iterations() >= max_iterations ||
           eval.virtual_time_s() >= max_virtual_seconds;
  }
};

/// Abstract auto-tuner: csTuner and the three baselines implement this.
class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;
  /// Runs until the stop criteria are met or the tuner exhausts its
  /// candidate pool (the paper's "evaluated completely" case in Fig. 8).
  virtual void tune(Evaluator& evaluator, const StopCriteria& stop) = 0;
};

}  // namespace cstuner::tuner
