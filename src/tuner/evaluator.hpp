#pragma once
// The evaluation engine every auto-tuner drives. It owns the
// (setting -> measured time) oracle, a result cache, the best-so-far state,
// and a *virtual clock* that charges each evaluation what it would cost on
// real hardware: per-variant compile time plus timing runs plus launch
// overhead. Iso-time comparisons (Figs. 9-11) read this clock.
//
// The engine is thread-safe and batch-parallel (docs/threading.md):
//   - the result cache is sharded across kCacheShards mutex-guarded maps,
//     so concurrent lookups rarely contend;
//   - the virtual clock accumulates integer picosecond ticks in an atomic.
//     Integer addition is associative, so the clock reads bit-identically
//     no matter which thread charged which evaluation first;
//   - best-so-far and the convergence trace update under one small result
//     mutex, keeping the trace monotone under concurrency;
//   - evaluate_batch() measures a whole batch across the thread pool, then
//     commits results in input order, so a batch is bit-identical to the
//     same calls made serially — with 1 worker or 16.
// Measurement noise keys off hash_combine(run_salt_, setting.hash()), which
// is evaluation-order independent; that is what makes the parallel engine
// deterministic at all.

#include <atomic>
#include <cstdint>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.hpp"
#include "gpusim/simulator.hpp"
#include "space/search_space.hpp"
#include "tuner/trace.hpp"

namespace cstuner::tuner {

struct EvalCosts {
  double compile_s = 0.25;        ///< nvcc cost per new kernel variant
  int runs_per_eval = 3;          ///< timing repetitions per variant
  double launch_overhead_s = 2e-3;
};

class Evaluator {
 public:
  Evaluator(const gpusim::Simulator& simulator,
            const space::SearchSpace& space, EvalCosts costs = {},
            std::uint64_t seed = 1, ThreadPool* pool = &ThreadPool::global());

  /// Measures a setting (mean of runs_per_eval noisy runs); charges the
  /// virtual clock on first evaluation, serves repeats from cache for free.
  /// Returns infinity for invalid settings (callers should avoid them).
  /// Thread-safe: concurrent callers racing on the same new setting charge
  /// the clock exactly once.
  double evaluate(const space::Setting& setting);

  /// Evaluates a batch of candidates, fanning the uncached measurements
  /// across the thread pool. Results (cache, clock, best, trace) are
  /// committed in input order after measurement, so the outcome is
  /// bit-identical to evaluating the batch serially, for any worker count.
  std::vector<double> evaluate_batch(std::span<const space::Setting> settings);

  /// Marks the end of one tuner iteration in the trace (iso-iteration data).
  void mark_iteration();

  double virtual_time_s() const {
    return static_cast<double>(
               virtual_time_ticks_.load(std::memory_order_acquire)) /
           kTicksPerSecond;
  }
  std::size_t unique_evaluations() const {
    return unique_evals_.load(std::memory_order_acquire);
  }
  std::size_t iterations() const {
    return iterations_.load(std::memory_order_acquire);
  }

  double best_time_ms() const;
  /// Stable only while no evaluation is in flight (read it after a batch or
  /// a tuning run, not during one).
  const std::optional<space::Setting>& best_setting() const {
    return best_setting_;
  }

  const ConvergenceTrace& trace() const { return trace_; }

  const space::SearchSpace& space() const { return space_; }
  const gpusim::Simulator& simulator() const { return simulator_; }

  /// Worker pool used by evaluate_batch; nullptr runs batches inline.
  ThreadPool* thread_pool() const { return pool_; }
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Debug mode: before the first (cache-miss) measurement of a valid
  /// setting, run the static analyzer over the kernel the codegen layer
  /// would emit for it and throw ConstraintError when any pass reports an
  /// error. Catches codegen/constraint drift at the point of use instead of
  /// ten thousand evaluations later. Off by default (it generates and parses
  /// the kernel source per unique setting).
  void set_debug_precheck(bool enabled) { debug_precheck_ = enabled; }
  bool debug_precheck() const { return debug_precheck_; }

  /// Resets clock, cache, best and trace (fresh tuning run). Not safe
  /// concurrently with evaluations.
  void reset();

 private:
  /// Virtual-clock resolution: 1 tick = 1 ps. Costs round to a tick, so
  /// ~2^62 ps (~50 virtual days) fit before overflow — far beyond any run.
  static constexpr double kTicksPerSecond = 1e12;
  static constexpr std::size_t kCacheShards = 16;

  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, double> map;
  };

  Shard& shard_for(std::uint64_t key) {
    // The low bits feed the unordered_map already; shard on higher ones.
    return shards_[(key >> 56) & (kCacheShards - 1)];
  }
  bool cache_lookup(std::uint64_t key, double& value_out);
  /// Debug-mode static analysis of the kernel for `setting`; throws
  /// ConstraintError when the analyzer reports an error-severity diagnostic.
  void precheck(const space::Setting& setting) const;
  /// Pure measurement: mean of runs_per_eval noisy simulator runs.
  double measure(std::uint64_t key, const space::Setting& setting) const;
  /// First-writer-wins cache insert + clock charge + best/trace update.
  /// Returns the cached value when another thread (or an earlier duplicate
  /// in the same batch) committed the key first.
  double commit(std::uint64_t key, const space::Setting& setting,
                double mean_ms);

  const gpusim::Simulator& simulator_;
  const space::SearchSpace& space_;
  EvalCosts costs_;
  std::uint64_t run_salt_;
  ThreadPool* pool_;
  bool debug_precheck_ = false;

  std::vector<Shard> shards_{kCacheShards};
  std::atomic<std::int64_t> virtual_time_ticks_{0};
  std::atomic<std::size_t> unique_evals_{0};
  std::atomic<std::size_t> iterations_{0};

  mutable std::mutex result_mutex_;  // guards the three fields below
  double best_time_ms_ = std::numeric_limits<double>::infinity();
  std::optional<space::Setting> best_setting_;
  ConvergenceTrace trace_;
};

/// Stop condition shared by all tuners: iteration cap (iso-iteration mode)
/// and/or virtual-time budget (iso-time mode).
struct StopCriteria {
  std::size_t max_iterations = std::numeric_limits<std::size_t>::max();
  double max_virtual_seconds = std::numeric_limits<double>::infinity();

  bool reached(const Evaluator& eval) const {
    return eval.iterations() >= max_iterations ||
           eval.virtual_time_s() >= max_virtual_seconds;
  }
};

/// Abstract auto-tuner: csTuner and the three baselines implement this.
class Tuner {
 public:
  virtual ~Tuner() = default;
  virtual std::string name() const = 0;
  /// Runs until the stop criteria are met or the tuner exhausts its
  /// candidate pool (the paper's "evaluated completely" case in Fig. 8).
  virtual void tune(Evaluator& evaluator, const StopCriteria& stop) = 0;
};

}  // namespace cstuner::tuner
