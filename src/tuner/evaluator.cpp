#include "tuner/evaluator.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <exception>

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"

namespace cstuner::tuner {

Evaluator::Evaluator(const gpusim::Simulator& simulator,
                     const space::SearchSpace& space, EvalCosts costs,
                     std::uint64_t seed, ThreadPool* pool)
    : simulator_(simulator),
      space_(space),
      inv_(&simulator.invariants(space.spec())),
      costs_(costs),
      run_salt_(hash_combine(seed, 0x4556414cULL)),
      pool_(pool),
      usage_reusable_(space.checker().limits() == space::ResourceLimits{}) {
  CSTUNER_CHECK_MSG(costs_.runs_per_eval > 0,
                    "EvalCosts.runs_per_eval must be positive");
  // The most recently constructed evaluator owns the tracer's virtual
  // clock: spans opened while this engine runs attribute its virtual time
  // (benches and tests construct evaluators strictly sequentially).
  obs::Tracer::global().set_virtual_clock(&virtual_time_ticks_);
}

Evaluator::~Evaluator() {
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.virtual_clock() == &virtual_time_ticks_) {
    tracer.set_virtual_clock(nullptr);
  }
}

std::int64_t Evaluator::to_ticks(double seconds) {
  return std::llround(seconds * kTicksPerSecond);
}

void Evaluator::set_fault_injection(const gpusim::FaultConfig& config,
                                    const std::string& scope) {
  if (config.any()) {
    injector_.emplace(config, scope);
  } else {
    injector_.reset();
  }
}

void Evaluator::set_kill_plan(std::vector<RankKill> plan,
                              const std::string& scope) {
  if (plan.empty()) return;
  if (!injector_.has_value()) {
    // Rank kills without eval faults: a zero-rate injector carries the
    // plan and never injects a measurement failure.
    injector_.emplace(gpusim::FaultConfig{}, scope);
  }
  injector_->set_kill_plan(std::move(plan));
}

void Evaluator::set_retry_policy(const RetryPolicy& policy) {
  CSTUNER_CHECK_MSG(policy.max_attempts >= 1,
                    "RetryPolicy.max_attempts must be >= 1");
  CSTUNER_CHECK_MSG(policy.quarantine_threshold >= 1,
                    "RetryPolicy.quarantine_threshold must be >= 1");
  policy_ = policy;
}

void Evaluator::set_checkpoint(Checkpoint* checkpoint) {
  checkpoint_ = checkpoint;
}

bool Evaluator::cache_lookup(std::uint64_t key, EvalResult& value_out) {
  // One shard-index computation serves both the table access and the hit
  // counter below.
  const std::size_t idx = shard_index(key);
  Shard& shard = shards_[idx];
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (const EvalResult* found = shard.map.find(key)) {
      value_out = *found;
      hit = true;
    }
  }
  if (hit) count_cache_hits(idx, 1);
  return hit;
}

void Evaluator::count_cache_hits(std::size_t shard_idx, std::uint64_t hits) {
#if !defined(CSTUNER_OBS_DISABLED)
  // Per-shard hit counters expose cache skew (a hot shard means hash
  // clustering); the counter references resolve once, so the hit path
  // never builds a metric name.
  static const auto shard_hits = [] {
    std::array<obs::Counter*, kCacheShards> counters{};
    std::string name = "evaluator.cache_hits.shard00";
    for (std::size_t s = 0; s < kCacheShards; ++s) {
      name[name.size() - 2] = static_cast<char>('0' + s / 10);
      name[name.size() - 1] = static_cast<char>('0' + s % 10);
      counters[s] = &obs::metrics().counter(name);
    }
    return counters;
  }();
  shard_hits[shard_idx]->add(hits);
  CSTUNER_OBS_COUNT("evaluator.cache_hits", hits);
#else
  (void)shard_idx;
  (void)hits;
#endif
}

void Evaluator::reserve_cache(std::size_t expected_unique) {
  // Spread over the shards with headroom for hash skew; each shard table
  // rounds up to a power of two under its 7/8 load ceiling.
  const std::size_t per_shard = expected_unique / kCacheShards + 8;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.reserve(per_shard);
  }
}

void Evaluator::precheck(const space::Setting& setting) const {
  analysis::AnalyzerOptions options;
  options.arch = &simulator_.arch();
  const analysis::Report report =
      analysis::analyze_setting(space_.spec(), setting, options);
  if (report.error_count() > 0) {
    throw ConstraintError("debug precheck failed for setting " +
                          setting.to_string() + "\n" + report.to_string());
  }
}

double Evaluator::noisy_mean_ms(std::uint64_t key,
                                double noise_free_ms) const {
  // (The "evaluator.measure_runs" counter is bumped by the callers —
  // per measurement on the single path, aggregated per chunk on the batch
  // path — so the totals are identical but the batch path pays one atomic
  // per chunk instead of one per eval.)
  // The evaluator key IS setting.hash() (evaluate_result), so the noise
  // seeds below reproduce the historical measure_ms(spec, setting, run)
  // chain bit for bit — the profile is just no longer recomputed per run.
  const std::uint64_t base_run = hash_combine(run_salt_, key);
  const std::uint64_t premixed = hash_combine(inv_->noise_seed_prefix, key);
  double sum_ms = 0.0;
  for (int run = 0; run < costs_.runs_per_eval; ++run) {
    const auto run_index = base_run + static_cast<std::uint64_t>(run);
    double ms =
        gpusim::Simulator::noisy_time_from(premixed, noise_free_ms, run_index);
    if (injector_.has_value()) {
      ms *= injector_->noise_factor(key, static_cast<std::uint64_t>(run));
    }
    sum_ms += ms;
  }
  return sum_ms / costs_.runs_per_eval;
}

void Evaluator::finish_measure(std::uint64_t key, double noise_free_ms,
                               Probe& probe) const {
  probe.result.time_ms = noisy_mean_ms(key, noise_free_ms);
  probe.needs_time = false;
}

int Evaluator::effective_max_attempts() const {
  if (!std::isfinite(policy_.fault_budget_s)) return policy_.max_attempts;
  const auto spent = fault_overhead_ticks_.load(std::memory_order_acquire);
  // Budget spent: fail fast on the first faulty attempt instead of
  // retrying. (A finite budget trades bit-identical replay for a bound on
  // time lost to faults; see RetryPolicy.)
  return spent >= to_ticks(policy_.fault_budget_s) ? 1
                                                   : policy_.max_attempts;
}

Evaluator::Probe Evaluator::run_attempt_ladder(std::uint64_t key,
                                               int max_attempts) const {
  Probe probe;
  probe.state = Probe::State::kMeasured;

  if (!injector_.has_value()) {
    probe.result = {EvalStatus::kOk, 0.0, 1};
    probe.needs_time = true;
    return probe;
  }

  std::int64_t ticks = 0;
  double backoff_s = policy_.backoff_initial_s;
  EvalStatus last_failure = EvalStatus::kTransient;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      ticks += to_ticks(backoff_s);
      backoff_s *= policy_.backoff_multiplier;
    }
    const gpusim::FaultKind kind = injector_->decide(key, attempt);
    if (kind == gpusim::FaultKind::kNone) {
      probe.result = {EvalStatus::kOk, 0.0,
                      static_cast<std::uint8_t>(attempt)};
      probe.needs_time = true;
      probe.overhead_ticks = ticks;
      return probe;
    }
    switch (kind) {
      case gpusim::FaultKind::kCompileFail:
        // nvcc burned its compile time and rejected the variant; retrying
        // can never help (the permanent draw repeats on every attempt).
        probe.result = {EvalStatus::kCompileFail,
                        std::numeric_limits<double>::infinity(),
                        static_cast<std::uint8_t>(attempt)};
        probe.overhead_ticks = ticks + to_ticks(costs_.compile_s);
        return probe;
      case gpusim::FaultKind::kCrash:
        // Compiled, launched, aborted. Also permanent.
        probe.result = {EvalStatus::kCrash,
                        std::numeric_limits<double>::infinity(),
                        static_cast<std::uint8_t>(attempt)};
        probe.overhead_ticks =
            ticks + to_ticks(costs_.compile_s + costs_.launch_overhead_s);
        return probe;
      case gpusim::FaultKind::kTimeout:
        // The kernel hung until the watchdog deadline; the full deadline is
        // lost virtual time. Transient: the retry rerolls.
        ticks += to_ticks(policy_.eval_deadline_s);
        last_failure = EvalStatus::kTimeout;
        break;
      case gpusim::FaultKind::kTransient:
        // The runs launched but the profiler readings were garbage; the
        // launches are lost.
        ticks += to_ticks(costs_.runs_per_eval * costs_.launch_overhead_s);
        last_failure = EvalStatus::kTransient;
        break;
      case gpusim::FaultKind::kNone:
        break;  // unreachable; handled above
    }
  }
  // Retries exhausted on transient-class faults. The compile still
  // happened once; charge it here because the normal (success) cost path
  // never runs for a failed evaluation.
  probe.result = {last_failure, std::numeric_limits<double>::infinity(),
                  static_cast<std::uint8_t>(max_attempts)};
  probe.overhead_ticks = ticks + to_ticks(costs_.compile_s);
  return probe;
}

Evaluator::Probe Evaluator::probe_one(std::uint64_t key,
                                      const space::Setting& setting,
                                      int max_attempts) {
  if (EvalResult cached; cache_lookup(key, cached)) {
    Probe probe;
    probe.state = Probe::State::kCached;
    probe.result = cached;
    return probe;
  }
  return probe_uncached(key, setting, max_attempts);
}

Evaluator::Probe Evaluator::probe_uncached(std::uint64_t key,
                                           const space::Setting& setting,
                                           int max_attempts) {
  Probe probe;
  // Fault-free tunes never quarantine anything; the relaxed count check
  // keeps the hot path off the fault mutex in that (common) case.
  if (quarantine_count_.load(std::memory_order_acquire) != 0) {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (quarantine_.contains(key)) {
      probe.state = Probe::State::kQuarantine;
      probe.result = {EvalStatus::kQuarantined,
                      std::numeric_limits<double>::infinity(), 0};
      return probe;
    }
  }
  if (!space_.is_valid(setting, &probe.usage)) {
    probe.state = Probe::State::kInvalid;
    probe.result = {EvalStatus::kInvalid,
                    std::numeric_limits<double>::infinity(), 0};
    return probe;
  }
  if (debug_precheck_) precheck(setting);
  if (checkpoint_ != nullptr) {
    const auto& replay = checkpoint_->replay();
    if (const auto it = replay.find(key); it != replay.end()) {
      probe.state = Probe::State::kMeasured;
      probe.result = it->second.to_result();
      probe.overhead_ticks = it->second.overhead_ticks;
      probe.replayed = true;
      return probe;
    }
  }
  Probe measured = run_attempt_ladder(key, max_attempts);
  measured.usage = probe.usage;  // keep the validity check's estimate
  return measured;
}

EvalResult Evaluator::commit_one(std::uint64_t key,
                                 const space::Setting& setting,
                                 const Probe& probe, CommitTotals* totals) {
  switch (probe.state) {
    case Probe::State::kCached:
    case Probe::State::kInvalid:
      return probe.result;
    case Probe::State::kQuarantine: {
      CSTUNER_OBS_COUNT("evaluator.quarantine_hits", 1);
      std::lock_guard<std::mutex> fault_lock(fault_mutex_);
      ++stats_.quarantine_hits;
      std::lock_guard<std::mutex> result_lock(result_mutex_);
      trace_.record_event(key, EvalStatus::kQuarantined, 0);
      return probe.result;
    }
    case Probe::State::kMeasured:
      break;
  }

  const EvalResult& result = probe.result;

  // Cache first, exactly as a serial caller would probe: successes and
  // permanent failures are cacheable; a duplicate committer (earlier in
  // this batch, or a concurrent batch) serves the cached outcome and
  // charges nothing.
  const bool cacheable = result.ok() ||
                         result.status == EvalStatus::kCompileFail ||
                         result.status == EvalStatus::kCrash;
  if (!probe.cache_done) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (cacheable) {
      const auto [slot, inserted] = shard.map.try_emplace(key, result);
      if (!inserted) return *slot;
    } else if (const EvalResult* found = shard.map.find(key)) {
      return *found;
    }
  }

  // Quarantine accounting under the fault mutex. Charges for one key are
  // capped at the quarantine threshold: once the key is quarantined (by an
  // earlier commit in this batch or by a concurrent batch), this commit
  // degrades to a quarantine hit — matching what a serial re-evaluation
  // would have seen at probe time, and keeping clock/stat totals
  // independent of commit interleaving.
  // A clean first-attempt success touches none of the fault state (no
  // failure counters, no retries, no quarantine, no replay credit) — the
  // overwhelmingly common commit skips the fault mutex altogether.
  const bool clean_success =
      result.ok() && result.attempts <= 1 && !probe.replayed;
  bool quarantined_now = false;
  if (!clean_success) {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (!cacheable && quarantine_.contains(key)) {
      CSTUNER_OBS_COUNT("evaluator.quarantine_hits", 1);
      ++stats_.quarantine_hits;
      EvalResult hit{EvalStatus::kQuarantined,
                     std::numeric_limits<double>::infinity(), 0};
      std::lock_guard<std::mutex> result_lock(result_mutex_);
      trace_.record_event(key, EvalStatus::kQuarantined, 0);
      return hit;
    }
    if (result.failed()) {
      switch (result.status) {
        case EvalStatus::kCompileFail:
          ++stats_.compile_fail;
          break;
        case EvalStatus::kCrash:
          ++stats_.crash;
          break;
        case EvalStatus::kTimeout:
          ++stats_.timeout;
          break;
        case EvalStatus::kTransient:
          ++stats_.transient;
          break;
        default:
          break;
      }
      if (cacheable) {
        // Permanent failure: quarantine immediately.
        quarantined_now = quarantine_.insert(key).second;
      } else {
        const int count = ++fail_counts_[key];
        if (count >= policy_.quarantine_threshold) {
          quarantined_now = quarantine_.insert(key).second;
        }
      }
      if (quarantined_now) {
        ++stats_.quarantined_settings;
        quarantine_count_.store(quarantine_.size(), std::memory_order_release);
      }
    }
    stats_.retries += result.attempts > 1 ? result.attempts - 1u : 0u;
    if (result.ok() && result.attempts > 1) ++stats_.recovered;
    if (probe.replayed) ++stats_.replayed;
  }
  if (quarantined_now) CSTUNER_OBS_COUNT("evaluator.quarantined", 1);
  if (result.failed()) CSTUNER_OBS_COUNT("evaluator.failed", 1);
  if (result.attempts > 1) {
    CSTUNER_OBS_COUNT("evaluator.retries", result.attempts - 1u);
  }
  if (probe.replayed) CSTUNER_OBS_COUNT("evaluator.replayed", 1);

  // Clock charges: fault overhead always; the normal compile+runs cost only
  // for a successful measurement. Both are tick-quantized before the atomic
  // add, so the total is independent of commit order across threads.
  if (probe.overhead_ticks != 0) {
    virtual_time_ticks_.fetch_add(probe.overhead_ticks,
                                  std::memory_order_acq_rel);
    fault_overhead_ticks_.fetch_add(probe.overhead_ticks,
                                    std::memory_order_acq_rel);
  }
  if (result.ok()) {
    const std::int64_t cost_ticks = success_cost_ticks(result.time_ms);
    if (totals != nullptr) {
      // Tick-quantized before accumulation, exactly like the direct
      // fetch_add — integer sums are associative, so the flushed total is
      // bit-identical to per-eval charging.
      totals->virtual_ticks += cost_ticks;
      ++totals->evals;
    } else {
      virtual_time_ticks_.fetch_add(cost_ticks, std::memory_order_acq_rel);
      unique_evals_.fetch_add(1, std::memory_order_acq_rel);
      CSTUNER_OBS_COUNT("evaluator.evals", 1);
    }
  }

  // Journal the committed outcome (unless it *came* from the journal).
  if (checkpoint_ != nullptr && !probe.replayed) {
    JournalEntry entry;
    entry.key = key;
    entry.status = result.status;
    entry.time_bits = std::bit_cast<std::uint64_t>(result.time_ms);
    entry.attempts = result.attempts;
    entry.overhead_ticks = probe.overhead_ticks;
    checkpoint_->append(entry);
  }

  // Nothing to trace and no chance of a new best: skip the result mutex.
  // best_bits_ mirrors best_time_ms_ (both written under the lock), so a
  // stale read can only be *larger* than the true best — the pessimistic
  // side, which falls through to the locked re-check below.
  if (clean_success &&
      !(result.time_ms <
        std::bit_cast<double>(best_bits_.load(std::memory_order_acquire)))) {
    return result;
  }

  // The trace record below reads the shared clock/counters; flush the
  // batch-local charges first so it sees exactly what per-eval charging
  // would have shown.
  if (totals != nullptr) flush_commit_totals(*totals);

  std::lock_guard<std::mutex> lock(result_mutex_);
  if (result.failed()) {
    trace_.record_event(key, result.status, result.attempts);
  } else if (result.attempts > 1) {
    trace_.record_event(key, EvalStatus::kOk, result.attempts);
  }
  if (result.ok() && result.time_ms < best_time_ms_) {
    best_time_ms_ = result.time_ms;
    best_setting_ = setting;
    best_bits_.store(std::bit_cast<std::uint64_t>(best_time_ms_),
                     std::memory_order_release);
    trace_.record(iterations(), unique_evaluations(), virtual_time_s(),
                  best_time_ms_);
  }
  return result;
}

void Evaluator::flush_commit_totals(CommitTotals& totals) {
  if (totals.virtual_ticks != 0) {
    virtual_time_ticks_.fetch_add(totals.virtual_ticks,
                                  std::memory_order_acq_rel);
  }
  if (totals.evals != 0) {
    unique_evals_.fetch_add(totals.evals, std::memory_order_acq_rel);
    CSTUNER_OBS_COUNT("evaluator.evals", totals.evals);
  }
  totals = CommitTotals{};
}

void Evaluator::check_cancelled() const {
  if (cancel_flag_ != nullptr &&
      cancel_flag_->load(std::memory_order_acquire)) {
    throw CancelledError("evaluation cancelled");
  }
  if (virtual_time_s() >= virtual_deadline_s_) {
    throw DeadlineError("virtual deadline of " +
                        std::to_string(virtual_deadline_s_) +
                        " s expired at " + std::to_string(virtual_time_s()) +
                        " s of virtual time");
  }
}

EvalResult Evaluator::evaluate_result(const space::Setting& setting) {
  check_cancelled();
  const std::uint64_t key = setting.hash();
  Probe probe = probe_one(key, setting, effective_max_attempts());
  if (probe.needs_time) {
    CSTUNER_OBS_COUNT("evaluator.measure_runs", costs_.runs_per_eval);
    // Single-element batch through the same oracle the chunked path uses,
    // so serial and batched evaluation agree bit for bit.
    double noise_free_ms = 0.0;
    const std::span<const space::Setting> one(&setting, 1);
    const std::span<double> time_out(&noise_free_ms, 1);
    if (usage_reusable_) {
      simulator_.profile_times(
          *inv_, one,
          std::span<const space::ResourceUsage>(&probe.usage, 1), time_out);
    } else {
      simulator_.profile_times(*inv_, one, time_out);
    }
    finish_measure(key, noise_free_ms, probe);
  }
  return commit_one(key, setting, probe);
}

double Evaluator::evaluate(const space::Setting& setting) {
  return evaluate_result(setting).time_or_inf();
}

std::vector<EvalResult> Evaluator::evaluate_batch(
    std::span<const space::Setting> settings) {
  // Cooperative cancellation point: the check runs before any shared state
  // is touched, so a cancelled or deadline-expired batch leaves the cache,
  // clock, quarantine and statistics exactly as the previous batch left
  // them — a batch that starts always commits whole.
  check_cancelled();
  CSTUNER_TRACE_SPAN("eval", "evaluator.batch");
  CSTUNER_OBS_COUNT("evaluator.batches", 1);
  CSTUNER_OBS_OBSERVE("evaluator.batch_size", settings.size());
  const std::size_t n = settings.size();
  std::vector<EvalResult> results(n);
  std::vector<std::uint64_t> keys(n, 0);
  std::vector<Probe> probes(n);
  std::vector<std::exception_ptr> errors(n);
  const int max_attempts = effective_max_attempts();

  // Phase 1 (parallel over fixed-size chunks): per slot, the pure decision
  // pipeline (cache, quarantine, validity, replay, fault ladder); then one
  // SoA pass through the simulator's batch oracle for every slot in the
  // chunk that reached a real measurement, and the deterministic run noise
  // on top. Chunk boundaries depend only on the batch size — never on the
  // worker count — and nothing is committed yet, so thread scheduling
  // cannot influence any result. A slot that throws is recorded and left
  // kInvalid; its neighbours still measure.
  const std::size_t chunks = (n + kProbeChunk - 1) / kProbeChunk;
  const auto probe_chunk = [&](std::size_t c) {
    const std::size_t begin = c * kProbeChunk;
    const std::size_t end = std::min(begin + kProbeChunk, n);
    for (std::size_t i = begin; i < end; ++i) keys[i] = settings[i].hash();

    // Cache probes for the whole chunk, grouped by shard: one lock per
    // shard touched instead of one per slot. A batch never mutates the
    // cache during phase 1, so lookup order within the chunk is
    // irrelevant; hits become kCached exactly as the per-slot lookup
    // would have made them. The counting sort keeps the grouping O(chunk)
    // instead of one sweep per shard.
    std::array<std::uint8_t, kProbeChunk> chunk_order;
    std::array<std::uint8_t, kCacheShards + 1> shard_start{};
    for (std::size_t i = begin; i < end; ++i) {
      ++shard_start[shard_index(keys[i]) + 1];
    }
    for (std::size_t s = 0; s < kCacheShards; ++s) {
      shard_start[s + 1] =
          static_cast<std::uint8_t>(shard_start[s + 1] + shard_start[s]);
    }
    std::array<std::uint8_t, kCacheShards> cursor;
    std::copy_n(shard_start.begin(), kCacheShards, cursor.begin());
    for (std::size_t i = begin; i < end; ++i) {
      chunk_order[cursor[shard_index(keys[i])]++] =
          static_cast<std::uint8_t>(i - begin);
    }
    for (std::size_t s = 0; s < kCacheShards; ++s) {
      if (shard_start[s] == shard_start[s + 1]) continue;
      Shard& shard = shards_[s];
      std::uint64_t hits = 0;
      {
        std::lock_guard<std::mutex> lock(shard.mutex);
        for (std::size_t j = shard_start[s]; j < shard_start[s + 1]; ++j) {
          const std::size_t i = begin + chunk_order[j];
          if (const EvalResult* found = shard.map.find(keys[i])) {
            probes[i].state = Probe::State::kCached;
            probes[i].result = *found;
            ++hits;
          }
        }
      }
      if (hits != 0) count_cache_hits(s, hits);
    }

    for (std::size_t i = begin; i < end; ++i) {
      if (probes[i].state == Probe::State::kCached) continue;
      try {
        probes[i] = probe_uncached(keys[i], settings[i], max_attempts);
      } catch (...) {
        errors[i] = std::current_exception();  // probes[i] stays kInvalid
      }
    }
    // Gather the measuring slots contiguously for the batch oracle. The
    // buffers are per-worker and reused across chunks: no allocation in
    // steady state.
    thread_local std::vector<std::size_t> pending;
    thread_local std::vector<space::Setting> pending_settings;
    thread_local std::vector<space::ResourceUsage> pending_usages;
    thread_local std::vector<double> pending_times;
    pending.clear();
    pending_usages.clear();
    for (std::size_t i = begin; i < end; ++i) {
      if (probes[i].needs_time) {
        pending.push_back(i);
        pending_usages.push_back(probes[i].usage);
      }
    }
    if (pending.empty()) return;
    // When every slot measures (the fresh-tune steady state), the pending
    // list IS the chunk: hand the original subspan to the oracle instead of
    // copying 64 Settings per chunk. Same elements in the same order, so
    // the results are bit-identical to the gathered path.
    std::span<const space::Setting> oracle_settings;
    if (pending.size() == end - begin) {
      oracle_settings = settings.subspan(begin, end - begin);
    } else {
      pending_settings.clear();
      for (const std::size_t i : pending) {
        pending_settings.push_back(settings[i]);
      }
      oracle_settings = pending_settings;
    }
    pending_times.assign(pending.size(), 0.0);
    try {
      if (usage_reusable_) {
        simulator_.profile_times(*inv_, oracle_settings, pending_usages,
                                 pending_times);
      } else {
        simulator_.profile_times(*inv_, oracle_settings, pending_times);
      }
    } catch (...) {
      // Cannot happen for constraint-valid settings (validity implies
      // launchability); if it ever does, fail the whole chunk's pending
      // slots rather than commit half-measured results.
      const std::exception_ptr err = std::current_exception();
      for (const std::size_t i : pending) {
        errors[i] = err;
        probes[i] = Probe{};
      }
      return;
    }
    for (std::size_t j = 0; j < pending.size(); ++j) {
      finish_measure(keys[pending[j]], pending_times[j], probes[pending[j]]);
    }
    CSTUNER_OBS_COUNT(
        "evaluator.measure_runs",
        pending.size() * static_cast<std::size_t>(costs_.runs_per_eval));
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(chunks, probe_chunk);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) probe_chunk(c);
  }

  // Phase 2a (sequential): the cache step of every measured slot, grouped
  // by shard — one lock per shard per batch instead of one per slot.
  // Within a shard the slots run in input order, the only order
  // first-writer-wins can observe (keys in different shards never
  // collide). A losing duplicate — earlier in this batch, or a concurrent
  // batch's insert — converts to kCached carrying the winner's value, so
  // the commit loop below serves it and charges nothing, exactly as the
  // per-slot cache step did.
  std::vector<std::uint32_t> measured_order;
  measured_order.reserve(n);
  std::array<std::uint32_t, kCacheShards + 1> measured_start{};
  for (std::size_t i = 0; i < n; ++i) {
    if (probes[i].state == Probe::State::kMeasured) {
      ++measured_start[shard_index(keys[i]) + 1];
    }
  }
  for (std::size_t s = 0; s < kCacheShards; ++s) {
    measured_start[s + 1] += measured_start[s];
  }
  measured_order.resize(measured_start[kCacheShards]);
  {
    std::array<std::uint32_t, kCacheShards> cursor;
    std::copy_n(measured_start.begin(), kCacheShards, cursor.begin());
    for (std::size_t i = 0; i < n; ++i) {
      if (probes[i].state == Probe::State::kMeasured) {
        measured_order[cursor[shard_index(keys[i])]++] =
            static_cast<std::uint32_t>(i);
      }
    }
  }
  for (std::size_t s = 0; s < kCacheShards; ++s) {
    if (measured_start[s] == measured_start[s + 1]) continue;
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (std::size_t j = measured_start[s]; j < measured_start[s + 1]; ++j) {
      const std::size_t i = measured_order[j];
      Probe& probe = probes[i];
      const EvalResult& result = probe.result;
      const bool cacheable = result.ok() ||
                             result.status == EvalStatus::kCompileFail ||
                             result.status == EvalStatus::kCrash;
      if (cacheable) {
        const auto [slot, inserted] = shard.map.try_emplace(keys[i], result);
        if (inserted) {
          probe.cache_done = true;
        } else {
          probe.state = Probe::State::kCached;
          probe.result = *slot;
        }
      } else if (const EvalResult* found = shard.map.find(keys[i])) {
        probe.state = Probe::State::kCached;
        probe.result = *found;
      } else {
        probe.cache_done = true;
      }
    }
  }

  // Phase 2b (sequential, input order): commit exactly as a serial caller
  // would have. Duplicate settings within the batch commit once; later
  // occurrences read the freshly cached value. Slots that threw stayed
  // kInvalid and commit nothing. Clean-success clock/counter charges
  // accumulate locally and flush once at the end (or earlier, whenever a
  // trace update needs the exact running totals).
  CommitTotals totals;
  for (std::size_t i = 0; i < n; ++i) {
    // Inline fast path: a clean first-attempt success that phase 2a already
    // cached and that cannot be a new best. This replicates commit_one's
    // exact route for that case — accumulate the clock charge, skip the
    // fault/journal/trace machinery — without the call; everything else
    // (faults, replays, dups, new bests, active checkpoints) drops to the
    // full commit.
    const Probe& probe = probes[i];
    if (probe.state == Probe::State::kMeasured && probe.cache_done &&
        checkpoint_ == nullptr && probe.result.ok() &&
        probe.result.attempts <= 1 && !probe.replayed &&
        probe.overhead_ticks == 0 &&
        !(probe.result.time_ms <
          std::bit_cast<double>(best_bits_.load(std::memory_order_acquire)))) {
      totals.virtual_ticks += success_cost_ticks(probe.result.time_ms);
      ++totals.evals;
      results[i] = probe.result;
      continue;
    }
    results[i] = commit_one(keys[i], settings[i], probes[i], &totals);
  }
  flush_commit_totals(totals);

  // Drain, don't leak: every completed slot is committed (cache, clock,
  // journal) above; only then does the lowest-index failure propagate.
  for (std::size_t i = 0; i < n; ++i) {
    if (errors[i]) std::rethrow_exception(errors[i]);
  }
  return results;
}

double Evaluator::best_time_ms() const {
  std::lock_guard<std::mutex> lock(result_mutex_);
  return best_time_ms_;
}

FaultStats Evaluator::fault_stats() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  FaultStats stats = stats_;
  stats.fault_overhead_s =
      static_cast<double>(
          fault_overhead_ticks_.load(std::memory_order_acquire)) /
      kTicksPerSecond;
  return stats;
}

bool Evaluator::is_quarantined(std::uint64_t setting_key) const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return quarantine_.contains(setting_key);
}

std::vector<std::uint64_t> Evaluator::quarantined_keys() const {
  std::vector<std::uint64_t> keys;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    keys.assign(quarantine_.begin(), quarantine_.end());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::string Evaluator::serialize_state() const {
  const FaultStats stats = fault_stats();
  JsonWriter json;
  json.begin_object();
  json.key("stats");
  stats.write_json(json);
  json.key("quarantine").begin_array();
  for (std::uint64_t key : quarantined_keys()) json.value(key);
  json.end_array();
  json.field("unique_evals",
             static_cast<std::uint64_t>(unique_evaluations()));
  json.field("iterations", static_cast<std::uint64_t>(iterations()));
  json.field("virtual_time_ticks",
             virtual_time_ticks_.load(std::memory_order_acquire));
  json.field("best_ms_bits", std::bit_cast<std::uint64_t>(best_time_ms()));
  json.end_object();
  return json.str();
}

void Evaluator::mark_iteration() {
  CSTUNER_OBS_COUNT("evaluator.iterations", 1);
  iterations_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(result_mutex_);
    if (best_setting_.has_value()) {
      trace_.record(iterations(), unique_evaluations(), virtual_time_s(),
                    best_time_ms_);
    }
  }
  if (checkpoint_ != nullptr) {
    checkpoint_->flush();
    const auto iter = iterations();
    if (iter % static_cast<std::size_t>(checkpoint_->snapshot_interval()) ==
        0) {
      checkpoint_->write_snapshot(serialize_state());
    }
  }
}

void Evaluator::reset() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
  virtual_time_ticks_.store(0, std::memory_order_release);
  unique_evals_.store(0, std::memory_order_release);
  iterations_.store(0, std::memory_order_release);
  fault_overhead_ticks_.store(0, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    stats_ = FaultStats{};
    fail_counts_.clear();
    quarantine_.clear();
    quarantine_count_.store(0, std::memory_order_release);
  }
  std::lock_guard<std::mutex> lock(result_mutex_);
  best_time_ms_ = std::numeric_limits<double>::infinity();
  best_setting_.reset();
  best_bits_.store(0x7ff0000000000000ULL, std::memory_order_release);
  trace_.clear();
}

}  // namespace cstuner::tuner
