#include "tuner/evaluator.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"

namespace cstuner::tuner {

Evaluator::Evaluator(const gpusim::Simulator& simulator,
                     const space::SearchSpace& space, EvalCosts costs,
                     std::uint64_t seed, ThreadPool* pool)
    : simulator_(simulator),
      space_(space),
      costs_(costs),
      run_salt_(hash_combine(seed, 0x4556414cULL)),
      pool_(pool) {
  CSTUNER_CHECK_MSG(costs_.runs_per_eval > 0,
                    "EvalCosts.runs_per_eval must be positive");
  // The most recently constructed evaluator owns the tracer's virtual
  // clock: spans opened while this engine runs attribute its virtual time
  // (benches and tests construct evaluators strictly sequentially).
  obs::Tracer::global().set_virtual_clock(&virtual_time_ticks_);
}

Evaluator::~Evaluator() {
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.virtual_clock() == &virtual_time_ticks_) {
    tracer.set_virtual_clock(nullptr);
  }
}

std::int64_t Evaluator::to_ticks(double seconds) {
  return std::llround(seconds * kTicksPerSecond);
}

void Evaluator::set_fault_injection(const gpusim::FaultConfig& config,
                                    const std::string& scope) {
  if (config.any()) {
    injector_.emplace(config, scope);
  } else {
    injector_.reset();
  }
}

void Evaluator::set_kill_plan(std::vector<RankKill> plan,
                              const std::string& scope) {
  if (plan.empty()) return;
  if (!injector_.has_value()) {
    // Rank kills without eval faults: a zero-rate injector carries the
    // plan and never injects a measurement failure.
    injector_.emplace(gpusim::FaultConfig{}, scope);
  }
  injector_->set_kill_plan(std::move(plan));
}

void Evaluator::set_retry_policy(const RetryPolicy& policy) {
  CSTUNER_CHECK_MSG(policy.max_attempts >= 1,
                    "RetryPolicy.max_attempts must be >= 1");
  CSTUNER_CHECK_MSG(policy.quarantine_threshold >= 1,
                    "RetryPolicy.quarantine_threshold must be >= 1");
  policy_ = policy;
}

void Evaluator::set_checkpoint(Checkpoint* checkpoint) {
  checkpoint_ = checkpoint;
}

bool Evaluator::cache_lookup(std::uint64_t key, EvalResult& value_out) {
  Shard& shard = shard_for(key);
  bool hit = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (const auto it = shard.map.find(key); it != shard.map.end()) {
      value_out = it->second;
      hit = true;
    }
  }
#if !defined(CSTUNER_OBS_DISABLED)
  if (hit) {
    // Per-shard hit counters expose cache skew (a hot shard means hash
    // clustering); the counter references resolve once.
    static const auto shard_hits = [] {
      std::array<obs::Counter*, kCacheShards> counters{};
      for (std::size_t s = 0; s < kCacheShards; ++s) {
        counters[s] = &obs::metrics().counter(
            "evaluator.cache_hits.shard" + std::to_string(s / 10) +
            std::to_string(s % 10));
      }
      return counters;
    }();
    shard_hits[(key >> 56) & (kCacheShards - 1)]->add(1);
    CSTUNER_OBS_COUNT("evaluator.cache_hits", 1);
  }
#endif
  return hit;
}

void Evaluator::precheck(const space::Setting& setting) const {
  analysis::AnalyzerOptions options;
  options.arch = &simulator_.arch();
  const analysis::Report report =
      analysis::analyze_setting(space_.spec(), setting, options);
  if (report.error_count() > 0) {
    throw ConstraintError("debug precheck failed for setting " +
                          setting.to_string() + "\n" + report.to_string());
  }
}

double Evaluator::measure(std::uint64_t key,
                          const space::Setting& setting) const {
  CSTUNER_OBS_COUNT("evaluator.measure_runs", costs_.runs_per_eval);
  double sum_ms = 0.0;
  for (int run = 0; run < costs_.runs_per_eval; ++run) {
    const auto run_index =
        hash_combine(run_salt_, key) + static_cast<std::uint64_t>(run);
    double ms = simulator_.measure_ms(space_.spec(), setting, run_index);
    if (injector_.has_value()) {
      ms *= injector_->noise_factor(key, static_cast<std::uint64_t>(run));
    }
    sum_ms += ms;
  }
  return sum_ms / costs_.runs_per_eval;
}

int Evaluator::effective_max_attempts() const {
  if (!std::isfinite(policy_.fault_budget_s)) return policy_.max_attempts;
  const auto spent = fault_overhead_ticks_.load(std::memory_order_acquire);
  // Budget spent: fail fast on the first faulty attempt instead of
  // retrying. (A finite budget trades bit-identical replay for a bound on
  // time lost to faults; see RetryPolicy.)
  return spent >= to_ticks(policy_.fault_budget_s) ? 1
                                                   : policy_.max_attempts;
}

Evaluator::Probe Evaluator::run_attempt_ladder(std::uint64_t key,
                                               const space::Setting& setting,
                                               int max_attempts) const {
  Probe probe;
  probe.state = Probe::State::kMeasured;

  if (!injector_.has_value()) {
    probe.result = {EvalStatus::kOk, measure(key, setting), 1};
    return probe;
  }

  std::int64_t ticks = 0;
  double backoff_s = policy_.backoff_initial_s;
  EvalStatus last_failure = EvalStatus::kTransient;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      ticks += to_ticks(backoff_s);
      backoff_s *= policy_.backoff_multiplier;
    }
    const gpusim::FaultKind kind = injector_->decide(key, attempt);
    if (kind == gpusim::FaultKind::kNone) {
      probe.result = {EvalStatus::kOk, measure(key, setting),
                      static_cast<std::uint8_t>(attempt)};
      probe.overhead_ticks = ticks;
      return probe;
    }
    switch (kind) {
      case gpusim::FaultKind::kCompileFail:
        // nvcc burned its compile time and rejected the variant; retrying
        // can never help (the permanent draw repeats on every attempt).
        probe.result = {EvalStatus::kCompileFail,
                        std::numeric_limits<double>::infinity(),
                        static_cast<std::uint8_t>(attempt)};
        probe.overhead_ticks = ticks + to_ticks(costs_.compile_s);
        return probe;
      case gpusim::FaultKind::kCrash:
        // Compiled, launched, aborted. Also permanent.
        probe.result = {EvalStatus::kCrash,
                        std::numeric_limits<double>::infinity(),
                        static_cast<std::uint8_t>(attempt)};
        probe.overhead_ticks =
            ticks + to_ticks(costs_.compile_s + costs_.launch_overhead_s);
        return probe;
      case gpusim::FaultKind::kTimeout:
        // The kernel hung until the watchdog deadline; the full deadline is
        // lost virtual time. Transient: the retry rerolls.
        ticks += to_ticks(policy_.eval_deadline_s);
        last_failure = EvalStatus::kTimeout;
        break;
      case gpusim::FaultKind::kTransient:
        // The runs launched but the profiler readings were garbage; the
        // launches are lost.
        ticks += to_ticks(costs_.runs_per_eval * costs_.launch_overhead_s);
        last_failure = EvalStatus::kTransient;
        break;
      case gpusim::FaultKind::kNone:
        break;  // unreachable; handled above
    }
  }
  // Retries exhausted on transient-class faults. The compile still
  // happened once; charge it here because the normal (success) cost path
  // never runs for a failed evaluation.
  probe.result = {last_failure, std::numeric_limits<double>::infinity(),
                  static_cast<std::uint8_t>(max_attempts)};
  probe.overhead_ticks = ticks + to_ticks(costs_.compile_s);
  return probe;
}

Evaluator::Probe Evaluator::probe_one(std::uint64_t key,
                                      const space::Setting& setting,
                                      int max_attempts) {
  Probe probe;
  if (EvalResult cached; cache_lookup(key, cached)) {
    probe.state = Probe::State::kCached;
    probe.result = cached;
    return probe;
  }
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (quarantine_.contains(key)) {
      probe.state = Probe::State::kQuarantine;
      probe.result = {EvalStatus::kQuarantined,
                      std::numeric_limits<double>::infinity(), 0};
      return probe;
    }
  }
  if (!space_.is_valid(setting)) {
    probe.state = Probe::State::kInvalid;
    probe.result = {EvalStatus::kInvalid,
                    std::numeric_limits<double>::infinity(), 0};
    return probe;
  }
  if (debug_precheck_) precheck(setting);
  if (checkpoint_ != nullptr) {
    const auto& replay = checkpoint_->replay();
    if (const auto it = replay.find(key); it != replay.end()) {
      probe.state = Probe::State::kMeasured;
      probe.result = it->second.to_result();
      probe.overhead_ticks = it->second.overhead_ticks;
      probe.replayed = true;
      return probe;
    }
  }
  return run_attempt_ladder(key, setting, max_attempts);
}

EvalResult Evaluator::commit_one(std::uint64_t key,
                                 const space::Setting& setting,
                                 const Probe& probe) {
  switch (probe.state) {
    case Probe::State::kCached:
    case Probe::State::kInvalid:
      return probe.result;
    case Probe::State::kQuarantine: {
      CSTUNER_OBS_COUNT("evaluator.quarantine_hits", 1);
      std::lock_guard<std::mutex> fault_lock(fault_mutex_);
      ++stats_.quarantine_hits;
      std::lock_guard<std::mutex> result_lock(result_mutex_);
      trace_.record_event(key, EvalStatus::kQuarantined, 0);
      return probe.result;
    }
    case Probe::State::kMeasured:
      break;
  }

  const EvalResult& result = probe.result;

  // Cache first, exactly as a serial caller would probe: successes and
  // permanent failures are cacheable; a duplicate committer (earlier in
  // this batch, or a concurrent batch) serves the cached outcome and
  // charges nothing.
  const bool cacheable = result.ok() ||
                         result.status == EvalStatus::kCompileFail ||
                         result.status == EvalStatus::kCrash;
  {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (cacheable) {
      const auto [it, inserted] = shard.map.emplace(key, result);
      if (!inserted) return it->second;
    } else if (const auto it = shard.map.find(key); it != shard.map.end()) {
      return it->second;
    }
  }

  // Quarantine accounting under the fault mutex. Charges for one key are
  // capped at the quarantine threshold: once the key is quarantined (by an
  // earlier commit in this batch or by a concurrent batch), this commit
  // degrades to a quarantine hit — matching what a serial re-evaluation
  // would have seen at probe time, and keeping clock/stat totals
  // independent of commit interleaving.
  bool quarantined_now = false;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (!cacheable && quarantine_.contains(key)) {
      CSTUNER_OBS_COUNT("evaluator.quarantine_hits", 1);
      ++stats_.quarantine_hits;
      EvalResult hit{EvalStatus::kQuarantined,
                     std::numeric_limits<double>::infinity(), 0};
      std::lock_guard<std::mutex> result_lock(result_mutex_);
      trace_.record_event(key, EvalStatus::kQuarantined, 0);
      return hit;
    }
    if (result.failed()) {
      switch (result.status) {
        case EvalStatus::kCompileFail:
          ++stats_.compile_fail;
          break;
        case EvalStatus::kCrash:
          ++stats_.crash;
          break;
        case EvalStatus::kTimeout:
          ++stats_.timeout;
          break;
        case EvalStatus::kTransient:
          ++stats_.transient;
          break;
        default:
          break;
      }
      if (cacheable) {
        // Permanent failure: quarantine immediately.
        quarantined_now = quarantine_.insert(key).second;
      } else {
        const int count = ++fail_counts_[key];
        if (count >= policy_.quarantine_threshold) {
          quarantined_now = quarantine_.insert(key).second;
        }
      }
      if (quarantined_now) ++stats_.quarantined_settings;
    }
    stats_.retries += result.attempts > 1 ? result.attempts - 1u : 0u;
    if (result.ok() && result.attempts > 1) ++stats_.recovered;
    if (probe.replayed) ++stats_.replayed;
  }
  if (quarantined_now) CSTUNER_OBS_COUNT("evaluator.quarantined", 1);
  if (result.failed()) CSTUNER_OBS_COUNT("evaluator.failed", 1);
  if (result.attempts > 1) {
    CSTUNER_OBS_COUNT("evaluator.retries", result.attempts - 1u);
  }
  if (probe.replayed) CSTUNER_OBS_COUNT("evaluator.replayed", 1);

  // Clock charges: fault overhead always; the normal compile+runs cost only
  // for a successful measurement. Both are tick-quantized before the atomic
  // add, so the total is independent of commit order across threads.
  if (probe.overhead_ticks != 0) {
    virtual_time_ticks_.fetch_add(probe.overhead_ticks,
                                  std::memory_order_acq_rel);
    fault_overhead_ticks_.fetch_add(probe.overhead_ticks,
                                    std::memory_order_acq_rel);
  }
  if (result.ok()) {
    const double cost_s = costs_.compile_s +
                          costs_.runs_per_eval * (result.time_ms / 1e3 +
                                                  costs_.launch_overhead_s);
    virtual_time_ticks_.fetch_add(to_ticks(cost_s), std::memory_order_acq_rel);
    unique_evals_.fetch_add(1, std::memory_order_acq_rel);
    CSTUNER_OBS_COUNT("evaluator.evals", 1);
  }

  // Journal the committed outcome (unless it *came* from the journal).
  if (checkpoint_ != nullptr && !probe.replayed) {
    JournalEntry entry;
    entry.key = key;
    entry.status = result.status;
    entry.time_bits = std::bit_cast<std::uint64_t>(result.time_ms);
    entry.attempts = result.attempts;
    entry.overhead_ticks = probe.overhead_ticks;
    checkpoint_->append(entry);
  }

  std::lock_guard<std::mutex> lock(result_mutex_);
  if (result.failed()) {
    trace_.record_event(key, result.status, result.attempts);
  } else if (result.attempts > 1) {
    trace_.record_event(key, EvalStatus::kOk, result.attempts);
  }
  if (result.ok() && result.time_ms < best_time_ms_) {
    best_time_ms_ = result.time_ms;
    best_setting_ = setting;
    trace_.record(iterations(), unique_evaluations(), virtual_time_s(),
                  best_time_ms_);
  }
  return result;
}

EvalResult Evaluator::evaluate_result(const space::Setting& setting) {
  const std::uint64_t key = setting.hash();
  Probe probe = probe_one(key, setting, effective_max_attempts());
  return commit_one(key, setting, probe);
}

double Evaluator::evaluate(const space::Setting& setting) {
  return evaluate_result(setting).time_or_inf();
}

std::vector<EvalResult> Evaluator::evaluate_batch(
    std::span<const space::Setting> settings) {
  CSTUNER_TRACE_SPAN("eval", "evaluator.batch");
  CSTUNER_OBS_COUNT("evaluator.batches", 1);
  CSTUNER_OBS_OBSERVE("evaluator.batch_size", settings.size());
  const std::size_t n = settings.size();
  std::vector<EvalResult> results(n);
  std::vector<std::uint64_t> keys(n, 0);
  std::vector<Probe> probes(n);
  const int max_attempts = effective_max_attempts();

  // Phase 2 (sequential, input order): commit exactly as a serial caller
  // would have. Duplicate settings within the batch commit once; later
  // occurrences read the freshly cached value. Probes that never ran (an
  // exception stopped phase 1) default to kInvalid and commit nothing.
  const auto commit_phase = [&] {
    for (std::size_t i = 0; i < n; ++i) {
      results[i] = commit_one(keys[i], settings[i], probes[i]);
    }
  };

  // Phase 1 (parallel): cache/quarantine probes and pure measurements.
  // Nothing is committed yet, so thread scheduling cannot influence any
  // result.
  const auto probe = [&](std::size_t i) {
    keys[i] = settings[i].hash();
    probes[i] = probe_one(keys[i], settings[i], max_attempts);
  };
  try {
    if (pool_ != nullptr) {
      pool_->parallel_for(n, probe);
    } else {
      for (std::size_t i = 0; i < n; ++i) probe(i);
    }
  } catch (...) {
    // Drain, don't leak: parallel_for finishes every index before
    // rethrowing, so commit whatever measured successfully (cache, clock,
    // journal) and only then propagate. The throwing slots stayed kInvalid.
    commit_phase();
    throw;
  }
  commit_phase();
  return results;
}

double Evaluator::best_time_ms() const {
  std::lock_guard<std::mutex> lock(result_mutex_);
  return best_time_ms_;
}

FaultStats Evaluator::fault_stats() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  FaultStats stats = stats_;
  stats.fault_overhead_s =
      static_cast<double>(
          fault_overhead_ticks_.load(std::memory_order_acquire)) /
      kTicksPerSecond;
  return stats;
}

bool Evaluator::is_quarantined(std::uint64_t setting_key) const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return quarantine_.contains(setting_key);
}

std::vector<std::uint64_t> Evaluator::quarantined_keys() const {
  std::vector<std::uint64_t> keys;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    keys.assign(quarantine_.begin(), quarantine_.end());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::string Evaluator::serialize_state() const {
  const FaultStats stats = fault_stats();
  JsonWriter json;
  json.begin_object();
  json.key("stats");
  stats.write_json(json);
  json.key("quarantine").begin_array();
  for (std::uint64_t key : quarantined_keys()) json.value(key);
  json.end_array();
  json.field("unique_evals",
             static_cast<std::uint64_t>(unique_evaluations()));
  json.field("iterations", static_cast<std::uint64_t>(iterations()));
  json.field("virtual_time_ticks",
             virtual_time_ticks_.load(std::memory_order_acquire));
  json.field("best_ms_bits", std::bit_cast<std::uint64_t>(best_time_ms()));
  json.end_object();
  return json.str();
}

void Evaluator::mark_iteration() {
  CSTUNER_OBS_COUNT("evaluator.iterations", 1);
  iterations_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::lock_guard<std::mutex> lock(result_mutex_);
    if (best_setting_.has_value()) {
      trace_.record(iterations(), unique_evaluations(), virtual_time_s(),
                    best_time_ms_);
    }
  }
  if (checkpoint_ != nullptr) {
    checkpoint_->flush();
    const auto iter = iterations();
    if (iter % static_cast<std::size_t>(checkpoint_->snapshot_interval()) ==
        0) {
      checkpoint_->write_snapshot(serialize_state());
    }
  }
}

void Evaluator::reset() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
  virtual_time_ticks_.store(0, std::memory_order_release);
  unique_evals_.store(0, std::memory_order_release);
  iterations_.store(0, std::memory_order_release);
  fault_overhead_ticks_.store(0, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    stats_ = FaultStats{};
    fail_counts_.clear();
    quarantine_.clear();
  }
  std::lock_guard<std::mutex> lock(result_mutex_);
  best_time_ms_ = std::numeric_limits<double>::infinity();
  best_setting_.reset();
  trace_.clear();
}

}  // namespace cstuner::tuner
