#include "tuner/evaluator.hpp"

#include "common/rng.hpp"

namespace cstuner::tuner {

Evaluator::Evaluator(const gpusim::Simulator& simulator,
                     const space::SearchSpace& space, EvalCosts costs,
                     std::uint64_t seed)
    : simulator_(simulator),
      space_(space),
      costs_(costs),
      run_salt_(hash_combine(seed, 0x4556414cULL)) {}

double Evaluator::evaluate(const space::Setting& setting) {
  const std::uint64_t key = setting.hash();
  if (const auto it = cache_.find(key); it != cache_.end()) {
    return it->second;
  }
  if (!space_.is_valid(setting)) {
    return std::numeric_limits<double>::infinity();
  }

  double sum_ms = 0.0;
  for (int run = 0; run < costs_.runs_per_eval; ++run) {
    const auto run_index =
        hash_combine(run_salt_, key) + static_cast<std::uint64_t>(run);
    sum_ms += simulator_.measure_ms(space_.spec(), setting, run_index);
  }
  const double mean_ms = sum_ms / costs_.runs_per_eval;

  // Charge what tuning this variant would cost on the machine: compiling
  // the generated kernel, then timing it runs_per_eval times.
  virtual_time_s_ += costs_.compile_s;
  virtual_time_s_ +=
      costs_.runs_per_eval * (mean_ms / 1e3 + costs_.launch_overhead_s);
  ++unique_evals_;

  cache_.emplace(key, mean_ms);
  if (mean_ms < best_time_ms_) {
    best_time_ms_ = mean_ms;
    best_setting_ = setting;
    trace_.record(iterations_, unique_evals_, virtual_time_s_, best_time_ms_);
  }
  return mean_ms;
}

void Evaluator::mark_iteration() {
  ++iterations_;
  if (best_setting_.has_value()) {
    trace_.record(iterations_, unique_evals_, virtual_time_s_, best_time_ms_);
  }
}

void Evaluator::reset() {
  cache_.clear();
  virtual_time_s_ = 0.0;
  unique_evals_ = 0;
  iterations_ = 0;
  best_time_ms_ = std::numeric_limits<double>::infinity();
  best_setting_.reset();
  trace_.clear();
}

}  // namespace cstuner::tuner
