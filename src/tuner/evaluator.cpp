#include "tuner/evaluator.hpp"

#include <cmath>

#include "analysis/analyzer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace cstuner::tuner {

Evaluator::Evaluator(const gpusim::Simulator& simulator,
                     const space::SearchSpace& space, EvalCosts costs,
                     std::uint64_t seed, ThreadPool* pool)
    : simulator_(simulator),
      space_(space),
      costs_(costs),
      run_salt_(hash_combine(seed, 0x4556414cULL)),
      pool_(pool) {
  CSTUNER_CHECK_MSG(costs_.runs_per_eval > 0,
                    "EvalCosts.runs_per_eval must be positive");
}

bool Evaluator::cache_lookup(std::uint64_t key, double& value_out) {
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (const auto it = shard.map.find(key); it != shard.map.end()) {
    value_out = it->second;
    return true;
  }
  return false;
}

void Evaluator::precheck(const space::Setting& setting) const {
  analysis::AnalyzerOptions options;
  options.arch = &simulator_.arch();
  const analysis::Report report =
      analysis::analyze_setting(space_.spec(), setting, options);
  if (report.error_count() > 0) {
    throw ConstraintError("debug precheck failed for setting " +
                          setting.to_string() + "\n" + report.to_string());
  }
}

double Evaluator::measure(std::uint64_t key,
                          const space::Setting& setting) const {
  double sum_ms = 0.0;
  for (int run = 0; run < costs_.runs_per_eval; ++run) {
    const auto run_index =
        hash_combine(run_salt_, key) + static_cast<std::uint64_t>(run);
    sum_ms += simulator_.measure_ms(space_.spec(), setting, run_index);
  }
  return sum_ms / costs_.runs_per_eval;
}

double Evaluator::commit(std::uint64_t key, const space::Setting& setting,
                         double mean_ms) {
  {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto [it, inserted] = shard.map.emplace(key, mean_ms);
    if (!inserted) return it->second;  // another committer won: free repeat
  }

  // Charge what tuning this variant would cost on the machine: compiling
  // the generated kernel, then timing it runs_per_eval times. The cost is
  // rounded to integer ticks before the atomic add, so the clock total is
  // independent of commit order across threads.
  const double cost_s =
      costs_.compile_s +
      costs_.runs_per_eval * (mean_ms / 1e3 + costs_.launch_overhead_s);
  virtual_time_ticks_.fetch_add(
      static_cast<std::int64_t>(std::llround(cost_s * kTicksPerSecond)),
      std::memory_order_acq_rel);
  unique_evals_.fetch_add(1, std::memory_order_acq_rel);

  std::lock_guard<std::mutex> lock(result_mutex_);
  if (mean_ms < best_time_ms_) {
    best_time_ms_ = mean_ms;
    best_setting_ = setting;
    trace_.record(iterations(), unique_evaluations(), virtual_time_s(),
                  best_time_ms_);
  }
  return mean_ms;
}

double Evaluator::evaluate(const space::Setting& setting) {
  const std::uint64_t key = setting.hash();
  if (double cached; cache_lookup(key, cached)) return cached;
  if (!space_.is_valid(setting)) {
    return std::numeric_limits<double>::infinity();
  }
  if (debug_precheck_) precheck(setting);
  return commit(key, setting, measure(key, setting));
}

std::vector<double> Evaluator::evaluate_batch(
    std::span<const space::Setting> settings) {
  const std::size_t n = settings.size();
  std::vector<double> results(n, std::numeric_limits<double>::infinity());
  std::vector<std::uint64_t> keys(n, 0);
  std::vector<double> means(n, 0.0);
  std::vector<std::uint8_t> needs_commit(n, 0);

  // Phase 1 (parallel): cache probes and pure measurements. Nothing is
  // committed yet, so thread scheduling cannot influence any result.
  const auto probe = [&](std::size_t i) {
    const auto& setting = settings[i];
    keys[i] = setting.hash();
    if (double cached; cache_lookup(keys[i], cached)) {
      results[i] = cached;
      return;
    }
    if (!space_.is_valid(setting)) return;  // stays infinity, uncharged
    if (debug_precheck_) precheck(setting);  // parallel_for rethrows
    means[i] = measure(keys[i], setting);
    needs_commit[i] = 1;
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(n, probe);
  } else {
    for (std::size_t i = 0; i < n; ++i) probe(i);
  }

  // Phase 2 (sequential, input order): commit exactly as a serial caller
  // would have. Duplicate settings within the batch commit once; later
  // occurrences read the freshly cached value.
  for (std::size_t i = 0; i < n; ++i) {
    if (needs_commit[i]) {
      results[i] = commit(keys[i], settings[i], means[i]);
    }
  }
  return results;
}

double Evaluator::best_time_ms() const {
  std::lock_guard<std::mutex> lock(result_mutex_);
  return best_time_ms_;
}

void Evaluator::mark_iteration() {
  iterations_.fetch_add(1, std::memory_order_acq_rel);
  std::lock_guard<std::mutex> lock(result_mutex_);
  if (best_setting_.has_value()) {
    trace_.record(iterations(), unique_evaluations(), virtual_time_s(),
                  best_time_ms_);
  }
}

void Evaluator::reset() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.map.clear();
  }
  virtual_time_ticks_.store(0, std::memory_order_release);
  unique_evals_.store(0, std::memory_order_release);
  iterations_.store(0, std::memory_order_release);
  std::lock_guard<std::mutex> lock(result_mutex_);
  best_time_ms_ = std::numeric_limits<double>::infinity();
  best_setting_.reset();
  trace_.clear();
}

}  // namespace cstuner::tuner
