#include "tuner/fault.hpp"

#include <sstream>

#include "common/json.hpp"

namespace cstuner::tuner {

const char* eval_status_name(EvalStatus status) {
  switch (status) {
    case EvalStatus::kOk:
      return "ok";
    case EvalStatus::kInvalid:
      return "invalid";
    case EvalStatus::kCompileFail:
      return "compile_fail";
    case EvalStatus::kCrash:
      return "crash";
    case EvalStatus::kTimeout:
      return "timeout";
    case EvalStatus::kTransient:
      return "transient";
    case EvalStatus::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

void FaultStats::write_json(JsonWriter& json) const {
  json.begin_object();
  json.field("compile_fail", compile_fail);
  json.field("crash", crash);
  json.field("timeout", timeout);
  json.field("transient", transient);
  json.field("retries", retries);
  json.field("recovered", recovered);
  json.field("quarantined_settings", quarantined_settings);
  json.field("quarantine_hits", quarantine_hits);
  json.field("replayed", replayed);
  json.field("fault_overhead_s", fault_overhead_s);
  json.end_object();
}

FaultStats FaultStats::from_json(const JsonValue& value) {
  FaultStats s;
  s.compile_fail = value.at("compile_fail").as_u64();
  s.crash = value.at("crash").as_u64();
  s.timeout = value.at("timeout").as_u64();
  s.transient = value.at("transient").as_u64();
  s.retries = value.at("retries").as_u64();
  s.recovered = value.at("recovered").as_u64();
  s.quarantined_settings = value.at("quarantined_settings").as_u64();
  s.quarantine_hits = value.at("quarantine_hits").as_u64();
  s.replayed = value.at("replayed").as_u64();
  s.fault_overhead_s = value.at("fault_overhead_s").as_double();
  return s;
}

std::string FaultStats::to_string() const {
  std::ostringstream os;
  os << failed_evaluations() << " failed (" << compile_fail << " compile, "
     << crash << " crash, " << timeout << " timeout, " << transient
     << " transient), " << retries << " retries (" << recovered
     << " recovered), " << quarantined_settings << " quarantined ("
     << quarantine_hits << " hits), " << replayed << " replayed, "
     << fault_overhead_s << " s fault overhead";
  return os.str();
}

FaultInjector::FaultInjector(gpusim::FaultConfig config,
                             const std::string& scope)
    : model_(config),
      scope_salt_(hash_combine(config.seed,
                               fnv1a(scope.data(), scope.size()))) {}

}  // namespace cstuner::tuner
