#include "tuner/fault.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace cstuner::tuner {

const char* eval_status_name(EvalStatus status) {
  switch (status) {
    case EvalStatus::kOk:
      return "ok";
    case EvalStatus::kInvalid:
      return "invalid";
    case EvalStatus::kCompileFail:
      return "compile_fail";
    case EvalStatus::kCrash:
      return "crash";
    case EvalStatus::kTimeout:
      return "timeout";
    case EvalStatus::kTransient:
      return "transient";
    case EvalStatus::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

void FaultStats::write_json(JsonWriter& json) const {
  json.begin_object();
  json.field("compile_fail", compile_fail);
  json.field("crash", crash);
  json.field("timeout", timeout);
  json.field("transient", transient);
  json.field("retries", retries);
  json.field("recovered", recovered);
  json.field("quarantined_settings", quarantined_settings);
  json.field("quarantine_hits", quarantine_hits);
  json.field("replayed", replayed);
  json.field("fault_overhead_s", fault_overhead_s);
  json.end_object();
}

FaultStats FaultStats::from_json(const JsonValue& value) {
  FaultStats s;
  s.compile_fail = value.at("compile_fail").as_u64();
  s.crash = value.at("crash").as_u64();
  s.timeout = value.at("timeout").as_u64();
  s.transient = value.at("transient").as_u64();
  s.retries = value.at("retries").as_u64();
  s.recovered = value.at("recovered").as_u64();
  s.quarantined_settings = value.at("quarantined_settings").as_u64();
  s.quarantine_hits = value.at("quarantine_hits").as_u64();
  s.replayed = value.at("replayed").as_u64();
  s.fault_overhead_s = value.at("fault_overhead_s").as_double();
  return s;
}

std::string FaultStats::to_string() const {
  std::ostringstream os;
  os << failed_evaluations() << " failed (" << compile_fail << " compile, "
     << crash << " crash, " << timeout << " timeout, " << transient
     << " transient), " << retries << " retries (" << recovered
     << " recovered), " << quarantined_settings << " quarantined ("
     << quarantine_hits << " hits), " << replayed << " replayed, "
     << fault_overhead_s << " s fault overhead";
  return os.str();
}

const char* island_event_kind_name(IslandEvent::Kind kind) {
  switch (kind) {
    case IslandEvent::Kind::kRankDeath:
      return "rank_death";
    case IslandEvent::Kind::kRingHeal:
      return "ring_heal";
    case IslandEvent::Kind::kEliteAdoption:
      return "elite_adoption";
  }
  return "unknown";
}

IslandEvent::Kind island_event_kind_from_name(const std::string& name) {
  for (int k = 0; k <= static_cast<int>(IslandEvent::Kind::kEliteAdoption);
       ++k) {
    const auto kind = static_cast<IslandEvent::Kind>(k);
    if (name == island_event_kind_name(kind)) return kind;
  }
  throw Error("unknown island event kind: " + name);
}

std::vector<RankKill> kill_plan_from_events(
    const std::vector<IslandEvent>& events) {
  std::vector<RankKill> plan;
  for (const IslandEvent& e : events) {
    if (e.kind != IslandEvent::Kind::kRankDeath) continue;
    const RankKill kill{e.rank, e.generation};
    if (std::find(plan.begin(), plan.end(), kill) == plan.end()) {
      plan.push_back(kill);
    }
  }
  return plan;
}

FaultInjector::FaultInjector(gpusim::FaultConfig config,
                             const std::string& scope)
    : model_(config),
      scope_salt_(hash_combine(config.seed,
                               fnv1a(scope.data(), scope.size()))) {}

void FaultInjector::set_kill_plan(std::vector<RankKill> plan) {
  // Normalize: dedup and order by (generation, rank) so the installed plan
  // is a pure function of its set of entries, not of flag order.
  std::sort(plan.begin(), plan.end(), [](const RankKill& a, const RankKill& b) {
    return a.generation != b.generation ? a.generation < b.generation
                                        : a.rank < b.rank;
  });
  plan.erase(std::unique(plan.begin(), plan.end()), plan.end());
  kill_plan_ = std::move(plan);
  kill_fired_.reset(kill_plan_.empty()
                        ? nullptr
                        : new std::atomic<bool>[kill_plan_.size()]);
  for (std::size_t i = 0; i < kill_plan_.size(); ++i) {
    kill_fired_[i].store(false, std::memory_order_relaxed);
  }
}

bool FaultInjector::should_kill(int rank, std::uint64_t generation) const {
  for (std::size_t i = 0; i < kill_plan_.size(); ++i) {
    if (kill_plan_[i].rank == rank &&
        kill_plan_[i].generation == generation) {
      return !kill_fired_[i].exchange(true, std::memory_order_acq_rel);
    }
  }
  return false;
}

std::size_t FaultInjector::kills_fired() const {
  std::size_t fired = 0;
  for (std::size_t i = 0; i < kill_plan_.size(); ++i) {
    if (kill_fired_[i].load(std::memory_order_acquire)) ++fired;
  }
  return fired;
}

}  // namespace cstuner::tuner
