#pragma once
// Span tracer of the observability layer (docs/observability.md): RAII
// scopes around the tuning pipeline's phases and hot paths, recorded into a
// bounded ring buffer and exported as Chrome `trace_event` JSON (load the
// file in chrome://tracing or Perfetto) plus a flat per-name summary table.
//
// Every span carries two clocks:
//   wall     steady-clock nanoseconds since the tracer epoch — real elapsed
//            time, for finding where the tuner actually spends wall clock;
//   virtual  the evaluator's deterministic virtual clock (picosecond ticks,
//            docs/threading.md) — the simulated hardware cost attributed to
//            the span.
//
// Virtual readings are only meaningful at *quiescent points*: the virtual
// clock is charged at batch commit, and concurrent batches (two GA islands)
// interleave their charges nondeterministically, so a span that closes
// while another thread is mid-batch would attribute the neighbour's ticks
// to itself. Spans therefore opt in via `track_virtual` — the phase-level
// macros set it, the hot-path macros do not — and in exchange the per-name
// virtual totals are bit-identical across 0/4/8 worker threads (tested).
//
// Cost model: a disabled tracer (the default) costs one relaxed atomic load
// per span site; compiling with CSTUNER_OBS=OFF removes the sites
// entirely. An enabled tracer costs two clock reads plus one short
// mutex-guarded ring append per span. The ring overwrites the oldest spans
// when full (dropped() counts them); the per-name aggregates are updated on
// every span close, so summary totals stay exact even after wraparound.

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cstuner {
class JsonWriter;
}

namespace cstuner::obs {

/// One closed span. `name`/`category` must be string literals (they are
/// stored unowned; every call site uses literals via the macros).
struct SpanRecord {
  const char* name = "";
  const char* category = "";
  std::uint32_t thread = 0;  ///< dense per-thread index (not the OS tid)
  std::uint16_t depth = 0;   ///< nesting depth on its thread (0 = root)
  bool track_virtual = false;
  std::int64_t wall_start_ns = 0;  ///< since the tracer epoch
  std::int64_t wall_dur_ns = 0;
  std::int64_t virt_start_ticks = 0;  ///< virtual clock, picoseconds
  std::int64_t virt_dur_ticks = 0;
};

/// Exact per-name totals, immune to ring wraparound.
struct SpanAggregate {
  const char* category = "";
  std::uint64_t count = 0;
  std::int64_t wall_ns = 0;
  std::int64_t virt_ticks = 0;
};

class Tracer {
 public:
  Tracer();

  /// The process-wide tracer all CSTUNER_TRACE_* macros write to.
  static Tracer& global();

  /// Recording gate. Disabled spans cost one relaxed load at the site.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Attaches the virtual clock the spans sample (the evaluator's tick
  /// accumulator; it registers itself on construction). nullptr detaches —
  /// spans then read virtual time 0.
  void set_virtual_clock(const std::atomic<std::int64_t>* ticks) {
    virtual_clock_.store(ticks, std::memory_order_release);
  }
  const std::atomic<std::int64_t>* virtual_clock() const {
    return virtual_clock_.load(std::memory_order_acquire);
  }

  std::int64_t read_virtual_ticks() const;
  /// Steady-clock nanoseconds since the tracer epoch (clear() resets it).
  std::int64_t now_wall_ns() const;

  /// Ring capacity in spans (default 65536). Clears recorded spans.
  void set_capacity(std::size_t capacity);

  /// Drops all recorded spans and aggregates and restarts the epoch.
  void clear();

  void record(const SpanRecord& span);

  /// Recorded spans, oldest first (at most `capacity` — older ones were
  /// overwritten and only survive in the aggregates).
  std::vector<SpanRecord> snapshot() const;
  /// Exact per-name totals, name-sorted by map order.
  std::map<std::string, SpanAggregate> aggregates() const;
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// Chrome trace_event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}
  /// with one complete ("ph":"X") event per span; ts/dur in microseconds,
  /// virtual ticks in args.
  void write_chrome_json(JsonWriter& json) const;

  /// Flat per-name summary table (count, wall totals, virtual totals).
  void write_summary(std::ostream& os) const;
  /// The summary's virtual-total column as JSON ({"name": ticks, ...});
  /// bit-identical across worker counts for virtual-tracking spans.
  void write_virtual_totals_json(JsonWriter& json) const;

  /// Dense index of the calling thread, assigned on first use.
  static std::uint32_t thread_index();

  /// Nesting depth bookkeeping for the calling thread (used by Span).
  static std::uint16_t enter_depth();
  static void leave_depth();

 private:
  std::atomic<bool> enabled_{false};
  std::atomic<const std::atomic<std::int64_t>*> virtual_clock_{nullptr};
  std::atomic<std::int64_t> epoch_ns_{0};  // steady_clock at ctor/clear

  mutable std::mutex mutex_;  // guards everything below
  std::vector<SpanRecord> ring_;
  std::size_t capacity_ = 65536;
  std::uint64_t total_recorded_ = 0;  // ring position = total % capacity
  std::map<std::string, SpanAggregate> aggregates_;
};

/// RAII scope: opens on construction, records on destruction. Inactive
/// (zero work beyond one load) when the tracer is disabled at entry.
class Span {
 public:
  Span(const char* category, const char* name, bool track_virtual = false);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  bool track_virtual_ = false;
  const char* name_ = "";
  const char* category_ = "";
  std::uint16_t depth_ = 0;
  std::int64_t wall_start_ns_ = 0;
  std::int64_t virt_start_ticks_ = 0;
};

}  // namespace cstuner::obs
