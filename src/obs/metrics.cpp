#include "obs/metrics.hpp"

#include <bit>

#include "common/json.hpp"

namespace cstuner::obs {

void Histogram::observe(std::uint64_t sample) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  buckets_[std::bit_width(sample)].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (sample < seen &&
         !min_.compare_exchange_weak(seen, sample,
                                     std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (sample > seen &&
         !max_.compare_exchange_weak(seen, sample,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::size_t Histogram::used_buckets() const {
  for (std::size_t b = kBuckets; b > 0; --b) {
    if (bucket(b - 1) != 0) return b;
  }
  return 0;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, _] : counters_) names.push_back(name);
  return names;
}

void MetricsRegistry::write_json(JsonWriter& json) const {
  std::lock_guard<std::mutex> lock(mutex_);
  json.begin_object();
  json.key("counters").begin_object();
  for (const auto& [name, c] : counters_) json.field(name, c->value());
  json.end_object();
  json.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) json.field(name, g->value());
  json.end_object();
  json.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    json.key(name).begin_object();
    json.field("count", h->count());
    json.field("sum", h->sum());
    json.field("min", h->count() == 0 ? 0 : h->min());
    json.field("max", h->max());
    json.field("mean", h->mean());
    json.key("buckets").begin_array();
    const std::size_t used = h->used_buckets();
    for (std::size_t b = 0; b < used; ++b) json.value(h->bucket(b));
    json.end_array();
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace cstuner::obs
