#include "obs/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/table.hpp"

namespace cstuner::obs {

namespace {

struct FlatDoc {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> labels;  // strings and bools
};

void flatten(const JsonValue& value, const std::string& path, FlatDoc& out) {
  switch (value.type()) {
    case JsonValue::Type::kObject:
      for (const auto& [key, member] : value.members()) {
        flatten(member, path.empty() ? key : path + "." + key, out);
      }
      break;
    case JsonValue::Type::kArray: {
      const auto& items = value.as_array();
      for (std::size_t i = 0; i < items.size(); ++i) {
        flatten(items[i], path + "[" + std::to_string(i) + "]", out);
      }
      break;
    }
    case JsonValue::Type::kNumber:
      out.numbers[path] = value.as_double();
      break;
    case JsonValue::Type::kString:
      out.labels[path] = value.as_string();
      break;
    case JsonValue::Type::kBool:
      out.labels[path] = value.as_bool() ? "true" : "false";
      break;
    case JsonValue::Type::kNull:
      // Null encodes non-finite doubles (common/json.hpp); nothing to
      // compare numerically.
      break;
  }
}

bool ignored(const std::string& path, const CompareOptions& options) {
  return std::any_of(options.ignore.begin(), options.ignore.end(),
                     [&](const std::string& needle) {
                       return !needle.empty() &&
                              path.find(needle) != std::string::npos;
                     });
}

}  // namespace

double parse_tolerance(const std::string& text) {
  std::string trimmed;
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) trimmed += c;
  }
  bool percent = false;
  if (!trimmed.empty() && trimmed.back() == '%') {
    percent = true;
    trimmed.pop_back();
  }
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(trimmed, &consumed);
  } catch (const std::exception&) {
    throw UsageError("cannot parse tolerance: " + text);
  }
  if (consumed != trimmed.size() || !std::isfinite(value) || value < 0.0) {
    throw UsageError("cannot parse tolerance: " + text);
  }
  return percent ? value / 100.0 : value;
}

std::size_t CompareReport::violations() const {
  std::size_t n = static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(),
                    [](const CompareEntry& e) { return !e.within; }));
  if (fail_on_missing) n += missing.size();
  return n;
}

std::string CompareReport::to_string() const {
  std::ostringstream os;
  // Out-of-tolerance entries first, then the worst survivors for context.
  std::vector<const CompareEntry*> shown;
  std::vector<const CompareEntry*> within;
  for (const auto& e : entries) {
    (e.within ? within : shown).push_back(&e);
  }
  std::sort(within.begin(), within.end(),
            [](const CompareEntry* a, const CompareEntry* b) {
              return a->rel_delta > b->rel_delta;
            });
  const std::size_t context = std::min<std::size_t>(within.size(), 5);
  shown.insert(shown.end(), within.begin(),
               within.begin() + static_cast<std::ptrdiff_t>(context));

  TextTable table({"metric", "baseline", "current", "delta", "status"});
  for (const auto* e : shown) {
    table.add_row({e->path, TextTable::fmt(e->baseline, 6),
                   TextTable::fmt(e->current, 6),
                   TextTable::fmt_pct(e->rel_delta, 2),
                   e->within ? "ok" : "REGRESSION"});
  }
  table.print(os);
  for (const auto& path : missing) {
    os << (fail_on_missing ? "MISSING  " : "missing  ") << path << '\n';
  }
  for (const auto& path : added) os << "added    " << path << '\n';
  for (const auto& path : drifted_labels) os << "drifted  " << path << '\n';
  os << entries.size() << " metric(s) compared at tolerance "
     << TextTable::fmt_pct(tolerance, 1) << ": " << violations()
     << " violation(s)\n";
  return os.str();
}

void CompareReport::write_json(JsonWriter& json) const {
  json.begin_object();
  json.field("tolerance", tolerance);
  json.field("compared", static_cast<std::uint64_t>(entries.size()));
  json.field("violations", static_cast<std::uint64_t>(violations()));
  json.field("ok", ok());
  json.key("regressions").begin_array();
  for (const auto& e : entries) {
    if (e.within) continue;
    json.begin_object();
    json.field("path", e.path);
    json.field("baseline", e.baseline);
    json.field("current", e.current);
    json.field("rel_delta", e.rel_delta);
    json.end_object();
  }
  json.end_array();
  json.key("missing").begin_array();
  for (const auto& path : missing) json.value(path);
  json.end_array();
  json.key("added").begin_array();
  for (const auto& path : added) json.value(path);
  json.end_array();
  json.key("drifted_labels").begin_array();
  for (const auto& path : drifted_labels) json.value(path);
  json.end_array();
  json.end_object();
}

CompareReport compare_reports(const JsonValue& baseline,
                              const JsonValue& current,
                              const CompareOptions& options) {
  FlatDoc base;
  FlatDoc cur;
  flatten(baseline, "", base);
  flatten(current, "", cur);

  CompareReport report;
  report.tolerance = options.tolerance;
  report.fail_on_missing = options.fail_on_missing;

  for (const auto& [path, base_value] : base.numbers) {
    if (ignored(path, options)) continue;
    const auto it = cur.numbers.find(path);
    if (it == cur.numbers.end()) {
      report.missing.push_back(path);
      continue;
    }
    const double cur_value = it->second;
    CompareEntry entry;
    entry.path = path;
    entry.baseline = base_value;
    entry.current = cur_value;
    const double scale = std::max(std::abs(base_value), std::abs(cur_value));
    if (scale <= options.abs_floor) {
      entry.rel_delta = 0.0;
    } else {
      entry.rel_delta = std::abs(cur_value - base_value) / scale;
    }
    entry.within = entry.rel_delta <= options.tolerance;
    report.entries.push_back(std::move(entry));
  }
  for (const auto& [path, _] : cur.numbers) {
    if (ignored(path, options)) continue;
    if (!base.numbers.contains(path)) report.added.push_back(path);
  }
  for (const auto& [path, base_label] : base.labels) {
    if (ignored(path, options)) continue;
    const auto it = cur.labels.find(path);
    if (it == cur.labels.end()) {
      report.missing.push_back(path);
    } else if (it->second != base_label) {
      report.drifted_labels.push_back(path);
    }
  }
  std::sort(report.missing.begin(), report.missing.end());
  return report;
}

CompareReport compare_report_files(const std::string& baseline_path,
                                   const std::string& current_path,
                                   const CompareOptions& options) {
  const auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("cannot open report file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
  };
  const JsonValue baseline = json_parse(read_file(baseline_path));
  const JsonValue current = json_parse(read_file(current_path));
  return compare_reports(baseline, current, options);
}

}  // namespace cstuner::obs
