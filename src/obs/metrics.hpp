#pragma once
// Metrics registry of the observability layer (docs/observability.md):
// named counters, gauges and histograms that the instrumented subsystems
// bump on their hot paths and the CLI merges into `tune --json`.
//
// Design constraints, in order:
//   - hot-path increments must be one atomic RMW (no lock, no lookup):
//     instrumentation sites resolve their instrument once into a
//     function-local static reference and then only touch the atomic;
//   - references returned by the registry stay valid for the process
//     lifetime (node-based storage), so cached references never dangle;
//   - exports are name-sorted, so JSON output is deterministic and the
//     `cstuner report` comparator can diff two exports field by field.
//
// Counter values mirror — not replace — the richer per-subsystem statistics
// (FaultStats, PreprocessReport): the registry is the cross-cutting view
// one flat namespace wide, cheap enough to leave always on.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cstuner {
class JsonWriter;
}

namespace cstuner::obs {

/// Monotone event count (evals run, cache hits, retries, ...).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (universe size, sampled count, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two bucketed distribution of non-negative integer samples
/// (batch sizes, retry ladders). Bucket b holds samples whose bit width is
/// b, i.e. bucket 0 = {0}, bucket 1 = {1}, bucket 2 = {2,3}, bucket 3 =
/// {4..7}, ... All fields are independent relaxed atomics: totals are
/// exact, min/max converge via CAS.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::uint64_t sample);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  /// UINT64_MAX when empty.
  std::uint64_t min() const { return min_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Index of the highest non-empty bucket + 1 (0 when empty).
  std::size_t used_buckets() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

/// Name -> instrument registry. Lookup (first use) takes a mutex; the
/// returned reference is stable forever after, so sites cache it.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Instruments registered so far, name-sorted.
  std::vector<std::string> counter_names() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}
  /// with name-sorted members. Zero-valued counters are included — absence
  /// means "never registered", which the report comparator treats
  /// differently from "registered but quiet".
  void write_json(JsonWriter& json) const;

  /// Zeroes every registered instrument (fresh run / test isolation).
  /// Registered names survive, so cached references stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry all instrumentation macros write to.
MetricsRegistry& metrics();

}  // namespace cstuner::obs
