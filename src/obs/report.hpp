#pragma once
// Metrics/bench report comparator (docs/observability.md): diffs two JSON
// documents — a committed baseline and a fresh run — field by field with a
// relative tolerance. `cstuner report` wraps it for humans; the CI
// bench-smoke gate wraps it for machines (exit code = pass/fail).
//
// Semantics:
//   - both documents are flattened to dotted paths ("results[0].best_ms");
//   - numeric leaves present in both are compared with a relative
//     tolerance: |cur - base| / max(|base|, |cur|) <= tol. Values whose
//     magnitudes are both <= abs_floor compare equal (quiet counters);
//   - paths whose name contains an ignore substring (default: "wall",
//     "evals_per_s", "info") are skipped — wall-clock readings vary by
//     machine, only the deterministic payload gates;
//   - baseline paths missing from the current run are violations (a
//     disappearing series is a silent coverage loss); new paths are
//     informational only, so adding metrics never breaks the gate;
//   - string/bool leaves are compared for equality but reported as
//     informational drift, not violations (e.g. a best-setting string).

#include <cstddef>
#include <string>
#include <vector>

namespace cstuner {
class JsonValue;
class JsonWriter;
}  // namespace cstuner

namespace cstuner::obs {

struct CompareOptions {
  /// Relative tolerance as a fraction (0.10 = 10%).
  double tolerance = 0.10;
  /// Values with |base| and |cur| both <= abs_floor are considered equal.
  double abs_floor = 1e-9;
  /// Case-sensitive substrings; a path containing any of them is skipped.
  std::vector<std::string> ignore = {"wall", "evals_per_s", "info"};
  /// When false, baseline paths absent from the current run do not count
  /// as violations.
  bool fail_on_missing = true;
};

/// "10%", "10 %", "0.1" -> 0.10. Throws UsageError on garbage or a
/// negative value.
double parse_tolerance(const std::string& text);

struct CompareEntry {
  std::string path;
  double baseline = 0.0;
  double current = 0.0;
  double rel_delta = 0.0;
  bool within = true;
};

struct CompareReport {
  std::vector<CompareEntry> entries;        ///< numeric comparisons, path-sorted
  std::vector<std::string> missing;         ///< in baseline, not in current
  std::vector<std::string> added;           ///< in current, not in baseline
  std::vector<std::string> drifted_labels;  ///< string/bool leaves that changed
  double tolerance = 0.0;
  bool fail_on_missing = true;

  std::size_t violations() const;
  bool ok() const { return violations() == 0; }

  /// Human-readable table: every out-of-tolerance entry, the worst
  /// in-tolerance entries, and the missing/added/drifted lists.
  std::string to_string() const;
  void write_json(JsonWriter& json) const;
};

/// Compares two parsed JSON documents (see file comment for semantics).
CompareReport compare_reports(const JsonValue& baseline,
                              const JsonValue& current,
                              const CompareOptions& options = {});

/// Convenience: reads, parses and compares two files. Throws
/// cstuner::Error when a file is unreadable or malformed.
CompareReport compare_report_files(const std::string& baseline_path,
                                   const std::string& current_path,
                                   const CompareOptions& options = {});

}  // namespace cstuner::obs
