#pragma once
// Instrumentation macros of the observability layer. Every hook in the
// tuning pipeline goes through these, so a build configured with
// -DCSTUNER_OBS=OFF (which defines CSTUNER_OBS_DISABLED) compiles the
// instrumentation out entirely — zero code, zero data, zero cost.
//
//   CSTUNER_TRACE_SPAN(cat, name)   wall-clock-only RAII span (hot paths;
//                                   safe anywhere, any thread)
//   CSTUNER_TRACE_PHASE(name)       wall + virtual-clock RAII span; place
//                                   ONLY at quiescent points (no concurrent
//                                   batch commits in flight) so the virtual
//                                   attribution is deterministic — see
//                                   obs/tracer.hpp
//   CSTUNER_OBS_COUNT(name, delta)  bump a registry counter
//   CSTUNER_OBS_GAUGE(name, v)      set a registry gauge
//   CSTUNER_OBS_OBSERVE(name, v)    add a sample to a registry histogram
//
// The scalar macros cache the instrument reference in a function-local
// static, so steady state is one relaxed atomic RMW per call.

#include "obs/metrics.hpp"
#include "obs/tracer.hpp"

namespace cstuner::obs {
/// False when the instrumentation macros were compiled out
/// (-DCSTUNER_OBS=OFF); lets the CLI warn instead of writing empty traces.
#if defined(CSTUNER_OBS_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif
}  // namespace cstuner::obs

#if defined(CSTUNER_OBS_DISABLED)

#define CSTUNER_TRACE_SPAN(cat, name)
#define CSTUNER_TRACE_PHASE(name)
#define CSTUNER_OBS_COUNT(name, delta) \
  do {                                 \
  } while (0)
#define CSTUNER_OBS_GAUGE(name, v) \
  do {                             \
  } while (0)
#define CSTUNER_OBS_OBSERVE(name, v) \
  do {                               \
  } while (0)

#else

#define CSTUNER_OBS_CONCAT_IMPL(a, b) a##b
#define CSTUNER_OBS_CONCAT(a, b) CSTUNER_OBS_CONCAT_IMPL(a, b)

#define CSTUNER_TRACE_SPAN(cat, name)                                     \
  ::cstuner::obs::Span CSTUNER_OBS_CONCAT(cstuner_obs_span_, __LINE__) { \
    (cat), (name), false                                                  \
  }

#define CSTUNER_TRACE_PHASE(name)                                         \
  ::cstuner::obs::Span CSTUNER_OBS_CONCAT(cstuner_obs_span_, __LINE__) { \
    "phase", (name), true                                                 \
  }

#define CSTUNER_OBS_COUNT(name, delta)                         \
  do {                                                         \
    static ::cstuner::obs::Counter& cstuner_obs_instrument =   \
        ::cstuner::obs::metrics().counter(name);               \
    cstuner_obs_instrument.add(                                \
        static_cast<std::uint64_t>(delta));                    \
  } while (0)

#define CSTUNER_OBS_GAUGE(name, v)                           \
  do {                                                       \
    static ::cstuner::obs::Gauge& cstuner_obs_instrument =   \
        ::cstuner::obs::metrics().gauge(name);               \
    cstuner_obs_instrument.set(static_cast<double>(v));      \
  } while (0)

#define CSTUNER_OBS_OBSERVE(name, v)                             \
  do {                                                           \
    static ::cstuner::obs::Histogram& cstuner_obs_instrument =   \
        ::cstuner::obs::metrics().histogram(name);               \
    cstuner_obs_instrument.observe(                              \
        static_cast<std::uint64_t>(v));                          \
  } while (0)

#endif  // CSTUNER_OBS_DISABLED
