#include "obs/tracer.hpp"

#include <chrono>
#include <ostream>

#include "common/json.hpp"
#include "common/table.hpp"

namespace cstuner::obs {

namespace {

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::atomic<std::uint32_t> g_next_thread_index{0};

thread_local std::uint32_t t_thread_index = ~0U;
thread_local std::uint16_t t_depth = 0;

}  // namespace

Tracer::Tracer() {
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
  ring_.reserve(capacity_);
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::int64_t Tracer::read_virtual_ticks() const {
  const auto* clock = virtual_clock();
  return clock == nullptr ? 0 : clock->load(std::memory_order_acquire);
}

std::int64_t Tracer::now_wall_ns() const {
  return steady_now_ns() - epoch_ns_.load(std::memory_order_relaxed);
}

void Tracer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.reserve(capacity_);
  total_recorded_ = 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  ring_.reserve(capacity_);
  total_recorded_ = 0;
  aggregates_.clear();
  epoch_ns_.store(steady_now_ns(), std::memory_order_relaxed);
}

void Tracer::record(const SpanRecord& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(span);
  } else {
    ring_[total_recorded_ % capacity_] = span;
  }
  ++total_recorded_;
  SpanAggregate& agg = aggregates_[span.name];
  agg.category = span.category;
  ++agg.count;
  agg.wall_ns += span.wall_dur_ns;
  agg.virt_ticks += span.virt_dur_ticks;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> spans;
  spans.reserve(ring_.size());
  if (total_recorded_ <= capacity_) {
    spans = ring_;
  } else {
    const std::size_t head = total_recorded_ % capacity_;
    spans.insert(spans.end(),
                 ring_.begin() + static_cast<std::ptrdiff_t>(head),
                 ring_.end());
    spans.insert(spans.end(), ring_.begin(),
                 ring_.begin() + static_cast<std::ptrdiff_t>(head));
  }
  return spans;
}

std::map<std::string, SpanAggregate> Tracer::aggregates() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return aggregates_;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_recorded_ <= capacity_ ? 0 : total_recorded_ - capacity_;
}

void Tracer::write_chrome_json(JsonWriter& json) const {
  const auto spans = snapshot();
  json.begin_object();
  json.key("traceEvents").begin_array();
  for (const auto& span : spans) {
    json.begin_object();
    json.field("name", span.name);
    json.field("cat", span.category);
    json.field("ph", "X");
    json.field("pid", 0);
    json.field("tid", static_cast<std::uint64_t>(span.thread));
    json.field("ts", static_cast<double>(span.wall_start_ns) / 1e3);
    json.field("dur", static_cast<double>(span.wall_dur_ns) / 1e3);
    json.key("args").begin_object();
    json.field("depth", static_cast<std::uint64_t>(span.depth));
    if (span.track_virtual) {
      json.field("virt_start_ticks", span.virt_start_ticks);
      json.field("virt_ticks", span.virt_dur_ticks);
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.field("displayTimeUnit", "ms");
  json.key("otherData").begin_object();
  json.field("recorded", recorded());
  json.field("dropped", dropped());
  json.end_object();
  json.end_object();
}

void Tracer::write_summary(std::ostream& os) const {
  const auto aggs = aggregates();
  TextTable table({"span", "category", "count", "wall_ms_total",
                   "wall_ms_mean", "virtual_s_total"});
  for (const auto& [name, agg] : aggs) {
    const double wall_ms = static_cast<double>(agg.wall_ns) / 1e6;
    table.add_row(
        {name, agg.category, std::to_string(agg.count),
         TextTable::fmt(wall_ms, 3),
         TextTable::fmt(wall_ms / static_cast<double>(agg.count), 4),
         TextTable::fmt(static_cast<double>(agg.virt_ticks) / 1e12, 6)});
  }
  table.print(os);
  if (dropped() > 0) {
    os << "(ring full: " << dropped()
       << " oldest span(s) dropped from the event list; totals are exact)\n";
  }
}

void Tracer::write_virtual_totals_json(JsonWriter& json) const {
  const auto aggs = aggregates();
  json.begin_object();
  for (const auto& [name, agg] : aggs) {
    if (agg.virt_ticks != 0) json.field(name, agg.virt_ticks);
  }
  json.end_object();
}

std::uint32_t Tracer::thread_index() {
  if (t_thread_index == ~0U) {
    t_thread_index =
        g_next_thread_index.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_index;
}

std::uint16_t Tracer::enter_depth() { return t_depth++; }

void Tracer::leave_depth() {
  if (t_depth > 0) --t_depth;
}

Span::Span(const char* category, const char* name, bool track_virtual)
    : active_(Tracer::global().enabled()) {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  track_virtual_ = track_virtual;
  name_ = name;
  category_ = category;
  depth_ = Tracer::enter_depth();
  wall_start_ns_ = tracer.now_wall_ns();
  if (track_virtual_) virt_start_ticks_ = tracer.read_virtual_ticks();
}

Span::~Span() {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  SpanRecord span;
  span.name = name_;
  span.category = category_;
  span.thread = Tracer::thread_index();
  span.depth = depth_;
  span.track_virtual = track_virtual_;
  span.wall_start_ns = wall_start_ns_;
  span.wall_dur_ns = tracer.now_wall_ns() - wall_start_ns_;
  if (track_virtual_) {
    span.virt_start_ticks = virt_start_ticks_;
    span.virt_dur_ticks = tracer.read_virtual_ticks() - virt_start_ticks_;
  }
  Tracer::leave_depth();
  tracer.record(span);
}

}  // namespace cstuner::obs
