#include "baselines/artemis.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/subspace.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace cstuner::baselines {

using namespace space;

Artemis::Artemis(ArtemisOptions options) : options_(options) {}

void Artemis::tune(tuner::Evaluator& evaluator,
                   const tuner::StopCriteria& stop) {
  CSTUNER_TRACE_PHASE("tune.artemis");
  const auto& space = evaluator.space();
  Rng rng(options_.seed);

  // Expert-knowledge stage ordering: computation-shaping optimizations
  // first (the paper: "Artemis tunes the computation for high-impact
  // optimizations first and then selects a few high-performance
  // candidates").
  const std::vector<std::vector<ParamId>> stages = {
      {kTBx, kTBy, kTBz, kUseShared},            // launch shape + tiling
      {kUseStreaming, kSD, kSB, kUsePrefetching},// streaming pipeline
      {kCMx, kCMy, kCMz, kBMx, kBMy, kBMz},      // thread coarsening
      {kUFx, kUFy, kUFz, kUseRetiming, kUseConstant},  // register tuning
  };

  struct Candidate {
    Setting setting;
    double time_ms = std::numeric_limits<double>::infinity();
  };

  // Seed candidates: the naive mapping plus random valid settings,
  // measured as one batch. The stage loops below stay strictly per-eval:
  // they check the stop criteria between evaluations, and batching them
  // would overshoot tight time budgets by a whole chunk.
  std::vector<Candidate> survivors;
  {
    std::vector<Setting> seeds;
    Setting naive;  // all parameters at 1 (one thread per point)
    naive.set(kTBx, 32);
    naive = space.checker().canonicalized(naive);
    if (space.is_valid(naive)) seeds.push_back(naive);
    while (seeds.size() < options_.survivors) {
      seeds.push_back(space.random_valid(rng));
    }
    const auto seed_results = evaluator.evaluate_batch(seeds);
    survivors.reserve(seeds.size());
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      survivors.push_back({seeds[i], seed_results[i].time_or_inf()});
    }
  }
  std::size_t since_mark = survivors.size();

  for (const auto& stage : stages) {
    if (stop.reached(evaluator)) break;
    const auto combos_per_candidate = std::max<std::size_t>(
        1, options_.max_stage_combos / std::max<std::size_t>(
                                           1, survivors.size()));
    std::vector<Candidate> pool = survivors;  // survivors stay eligible
    for (const auto& candidate : survivors) {
      if (stop.reached(evaluator)) break;
      auto combos =
          enumerate_combos(space, stage, combos_per_candidate, rng);
      for (const auto& combo : combos) {
        if (stop.reached(evaluator)) break;
        const Setting trial =
            apply_combo(space, stage, combo, candidate.setting);
        const double t = evaluator.evaluate(trial);
        if (std::isfinite(t)) pool.push_back({trial, t});
        if (++since_mark ==
            static_cast<std::size_t>(options_.evals_per_iteration)) {
          evaluator.mark_iteration();
          since_mark = 0;
        }
      }
    }
    // Keep the best distinct survivors.
    std::sort(pool.begin(), pool.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.time_ms < b.time_ms;
              });
    std::vector<Candidate> next;
    for (const auto& c : pool) {
      bool duplicate = false;
      for (const auto& kept : next) {
        if (kept.setting == c.setting) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) next.push_back(c);
      if (next.size() == options_.survivors) break;
    }
    if (!next.empty()) survivors = std::move(next);
  }
  if (since_mark > 0) evaluator.mark_iteration();
}

}  // namespace cstuner::baselines
