#include "baselines/opentuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "analysis/pruner.hpp"
#include "baselines/subspace.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace cstuner::baselines {

using space::kParamCount;
using space::ParamId;
using space::Setting;

OpenTuner::OpenTuner(OpenTunerOptions options) : options_(options) {}

std::string OpenTuner::name() const {
  switch (options_.technique) {
    case OpenTunerTechnique::kGlobalGa:
      return "OpenTuner";
    case OpenTunerTechnique::kHillClimber:
      return "OpenTuner/hill";
    case OpenTunerTechnique::kDifferentialEvolution:
      return "OpenTuner/de";
  }
  return "OpenTuner";
}

void OpenTuner::tune(tuner::Evaluator& evaluator,
                     const tuner::StopCriteria& stop) {
  CSTUNER_TRACE_PHASE("tune.opentuner");
  switch (options_.technique) {
    case OpenTunerTechnique::kGlobalGa:
      return tune_global_ga(evaluator, stop);
    case OpenTunerTechnique::kHillClimber:
      return tune_hill_climber(evaluator, stop);
    case OpenTunerTechnique::kDifferentialEvolution:
      return tune_differential_evolution(evaluator, stop);
  }
}

void OpenTuner::tune_global_ga(tuner::Evaluator& evaluator,
                               const tuner::StopCriteria& stop) {
  const auto& space = evaluator.space();
  ga::GaOptions ga_options = options_.ga;
  ga_options.seed = options_.seed;
  // Seed with valid configurations (any practical tuner starts from
  // launchable kernels); evolution itself explores the raw space.
  ga_options.initializer = [&space](Rng& rng) {
    return setting_to_genome(space, space.random_valid(rng));
  };
  ga::IslandGa island(parameter_cardinalities(space), ga_options);
  // OpenTuner breeds plenty of constraint-invalid genomes; the static
  // pruner hands them the penalty fitness directly (memoized per encoding)
  // instead of routing them through the evaluator batch.
  analysis::StaticPruner pruner(space);
  auto evaluate = [&](const std::vector<ga::Genome>& genomes) {
    std::vector<Setting> candidates;
    candidates.reserve(genomes.size());
    for (const auto& genome : genomes) {
      candidates.push_back(genome_to_setting(space, genome));
    }
    const auto keep = pruner.filter(candidates);
    std::vector<Setting> kept;
    std::vector<std::size_t> kept_pos;
    kept.reserve(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (keep[i]) {
        kept.push_back(candidates[i]);
        kept_pos.push_back(i);
      }
    }
    const auto kept_results = evaluator.evaluate_batch(kept);
    std::vector<double> fitnesses(candidates.size(), fitness_of(
        std::numeric_limits<double>::infinity()));
    for (std::size_t j = 0; j < kept_results.size(); ++j) {
      fitnesses[kept_pos[j]] = fitness_of(kept_results[j].time_or_inf());
    }
    return fitnesses;
  };
  auto should_stop = [&](const ga::GaState&) {
    evaluator.mark_iteration();
    return stop.reached(evaluator);
  };
  island.run(evaluate, should_stop);
}

void OpenTuner::tune_hill_climber(tuner::Evaluator& evaluator,
                                  const tuner::StopCriteria& stop) {
  const auto& space = evaluator.space();
  Rng rng(options_.seed);
  Setting current = space.random_valid(rng);
  double current_time = evaluator.evaluate(current);
  const int moves_per_iteration =
      options_.ga.sub_populations * options_.ga.population_size;

  while (!stop.reached(evaluator)) {
    // Generate the whole move set first (the moves depend only on `current`
    // and the RNG, not on each other's results), then measure it as one
    // batch across the pool.
    std::vector<Setting> neighbors;
    neighbors.reserve(static_cast<std::size_t>(moves_per_iteration));
    for (int m = 0; m < moves_per_iteration; ++m) {
      // One-parameter move to an adjacent admissible value.
      Setting neighbor = current;
      const auto pid =
          static_cast<ParamId>(rng.index(kParamCount));
      const auto& p = space.parameter(pid);
      const std::size_t idx = p.value_index(neighbor.get(pid));
      const std::size_t next =
          (idx == 0 || rng.bernoulli(0.5))
              ? std::min(idx + 1, p.cardinality() - 1)
              : idx - 1;
      neighbor.set(pid, p.values[next]);
      neighbors.push_back(space.checker().repaired(neighbor));
    }
    const auto results = evaluator.evaluate_batch(neighbors);
    Setting best_neighbor = current;
    double best_time = current_time;
    for (std::size_t m = 0; m < results.size(); ++m) {
      if (results[m].time_or_inf() < best_time) {
        best_time = results[m].time_or_inf();
        best_neighbor = neighbors[m];
      }
    }
    evaluator.mark_iteration();
    if (best_time < current_time) {
      current = best_neighbor;
      current_time = best_time;
    } else {
      // Local optimum: random restart, the OpenTuner escape hatch.
      current = space.random_valid(rng);
      current_time = evaluator.evaluate(current);
    }
  }
}

void OpenTuner::tune_differential_evolution(
    tuner::Evaluator& evaluator, const tuner::StopCriteria& stop) {
  const auto& space = evaluator.space();
  Rng rng(options_.seed);
  analysis::StaticPruner pruner(space);
  const auto cards = parameter_cardinalities(space);
  const std::size_t pop_size = static_cast<std::size_t>(
      options_.ga.sub_populations * options_.ga.population_size);
  constexpr double kF = 0.5;   // differential weight
  constexpr double kCr = 0.9;  // crossover probability

  // Population over continuous index space (rounded for evaluation).
  std::vector<std::vector<double>> population(pop_size);
  std::vector<double> times(pop_size);
  auto vec_to_setting = [&](const std::vector<double>& v) {
    ga::Genome genome(kParamCount);
    for (std::size_t i = 0; i < kParamCount; ++i) {
      const double clamped = std::clamp(
          v[i], 0.0, static_cast<double>(cards[i] - 1));
      genome[i] = static_cast<std::uint32_t>(std::lround(clamped));
    }
    return genome_to_setting(space, genome);
  };
  {
    std::vector<Setting> seeds;
    seeds.reserve(pop_size);
    for (std::size_t i = 0; i < pop_size; ++i) {
      // Seed from valid configurations; evolution explores the raw space.
      const Setting seed_setting = space.random_valid(rng);
      population[i].resize(kParamCount);
      for (std::size_t d = 0; d < kParamCount; ++d) {
        const auto& p = space.parameters()[d];
        population[i][d] = static_cast<double>(
            p.value_index(seed_setting.get(static_cast<ParamId>(d))));
      }
      seeds.push_back(vec_to_setting(population[i]));
    }
    const auto seed_results = evaluator.evaluate_batch(seeds);
    times.resize(seed_results.size());
    for (std::size_t i = 0; i < seed_results.size(); ++i) {
      times[i] = seed_results[i].time_or_inf();
    }
  }
  evaluator.mark_iteration();

  // Stop once the population has stopped discovering new settings for a
  // while: further generations would only replay cached evaluations.
  // Generation-synchronous DE: all trials are bred from the
  // generation-start population, measured as one batch, then selection
  // runs sequentially — bit-identical for any pool size.
  int stale_generations = 0;
  while (!stop.reached(evaluator) && stale_generations < 50) {
    const std::size_t evals_before = evaluator.unique_evaluations();
    std::vector<std::vector<double>> trials(pop_size);
    std::vector<Setting> trial_settings;
    trial_settings.reserve(pop_size);
    for (std::size_t i = 0; i < pop_size; ++i) {
      // DE/rand/1/bin mutant.
      std::size_t a = rng.index(pop_size), b = rng.index(pop_size),
                  c = rng.index(pop_size);
      trials[i] = population[i];
      const std::size_t forced = rng.index(kParamCount);
      for (std::size_t d = 0; d < kParamCount; ++d) {
        if (d == forced || rng.bernoulli(kCr)) {
          trials[i][d] = population[a][d] +
                         kF * (population[b][d] - population[c][d]);
        }
      }
      trial_settings.push_back(vec_to_setting(trials[i]));
    }
    // Static pruning: invalid trial vectors keep their infinite time
    // without occupying evaluator batch slots.
    const auto keep = pruner.filter(trial_settings);
    std::vector<Setting> kept;
    std::vector<std::size_t> kept_pos;
    kept.reserve(trial_settings.size());
    for (std::size_t i = 0; i < trial_settings.size(); ++i) {
      if (keep[i]) {
        kept.push_back(trial_settings[i]);
        kept_pos.push_back(i);
      }
    }
    const auto kept_results = evaluator.evaluate_batch(kept);
    std::vector<double> trial_times(trial_settings.size(),
                                    std::numeric_limits<double>::infinity());
    for (std::size_t j = 0; j < kept_results.size(); ++j) {
      trial_times[kept_pos[j]] = kept_results[j].time_or_inf();
    }
    for (std::size_t i = 0; i < pop_size; ++i) {
      if (trial_times[i] < times[i]) {
        population[i] = std::move(trials[i]);
        times[i] = trial_times[i];
      }
    }
    evaluator.mark_iteration();
    stale_generations = (evaluator.unique_evaluations() == evals_before)
                            ? stale_generations + 1
                            : 0;
  }
}

}  // namespace cstuner::baselines
