#pragma once
// Artemis baseline [38]: hierarchical auto-tuning driven by expert
// knowledge. High-impact optimizations are tuned first; after each stage
// only a few high-performance candidates survive into the next stage, which
// refines the lower-impact parameters around each survivor.

#include "tuner/evaluator.hpp"

namespace cstuner::baselines {

struct ArtemisOptions {
  std::size_t survivors = 4;        ///< candidates kept after each stage
  std::size_t max_stage_combos = 512;  ///< combos examined per stage
  int evals_per_iteration = 32;     ///< = GA population size, for fairness
  std::uint64_t seed = 17;
};

class Artemis : public tuner::Tuner {
 public:
  explicit Artemis(ArtemisOptions options = {});

  std::string name() const override { return "Artemis"; }
  void tune(tuner::Evaluator& evaluator,
            const tuner::StopCriteria& stop) override;

 private:
  ArtemisOptions options_;
};

}  // namespace cstuner::baselines
