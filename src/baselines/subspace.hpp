#pragma once
// Shared helper for the Garvey and Artemis baselines: enumerate (or
// random-sample, when too large) the cartesian value combinations of a
// subset of parameters.

#include <vector>

#include "common/rng.hpp"
#include "space/search_space.hpp"

namespace cstuner::baselines {

using Combo = std::vector<std::int64_t>;  ///< one value per subset parameter

/// All combos when the subset's cartesian size is <= cap, otherwise `cap`
/// distinct random combos.
std::vector<Combo> enumerate_combos(const space::SearchSpace& space,
                                    const std::vector<space::ParamId>& params,
                                    std::size_t cap, Rng& rng);

/// Writes a combo into `setting` and canonicalizes.
space::Setting apply_combo(const space::SearchSpace& space,
                           const std::vector<space::ParamId>& params,
                           const Combo& combo, space::Setting setting);

}  // namespace cstuner::baselines
