#pragma once
// Shared helpers for the baseline searchers and the optimizer-zoo ports
// (search/ported.cpp): subset-combination enumeration (Garvey, Artemis) and
// the genome/setting encoding the GA-style searchers use (OpenTuner). The
// encoding lives here — not in each searcher — so the baseline and its port
// can never drift apart; the regression pins in tests/test_optimizer_zoo.cpp
// depend on both producing the same settings for the same genomes.

#include <vector>

#include "common/rng.hpp"
#include "ga/gene.hpp"
#include "space/search_space.hpp"

namespace cstuner::baselines {

using Combo = std::vector<std::int64_t>;  ///< one value per subset parameter

/// All combos when the subset's cartesian size is <= cap, otherwise `cap`
/// distinct random combos.
std::vector<Combo> enumerate_combos(const space::SearchSpace& space,
                                    const std::vector<space::ParamId>& params,
                                    std::size_t cap, Rng& rng);

/// Writes a combo into `setting` and canonicalizes.
space::Setting apply_combo(const space::SearchSpace& space,
                           const std::vector<space::ParamId>& params,
                           const Combo& combo, space::Setting setting);

/// Penalty fitness mapping shared by the GA-style searchers: 1000/time for
/// finite positive times, 1e-9 (near-zero, not zero) otherwise so roulette
/// selection stays well-defined when a whole neighbourhood is invalid.
double fitness_of(double time_ms);

/// Decodes a genome (one value index per parameter, possibly out of range —
/// indices wrap) into a setting, applying only the trivial canonicalization.
/// Invalid combinations are left for the penalty fitness: the blindness to
/// stencil-specific structure the paper attributes to OpenTuner (§II-C).
space::Setting genome_to_setting(const space::SearchSpace& space,
                                 const ga::Genome& genome);

/// Inverse encoding: one value index per parameter of `setting`.
ga::Genome setting_to_genome(const space::SearchSpace& space,
                             const space::Setting& setting);

/// Per-parameter value-set sizes, in ParamId order.
std::vector<std::uint32_t> parameter_cardinalities(
    const space::SearchSpace& space);

}  // namespace cstuner::baselines
