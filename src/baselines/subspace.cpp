#include "baselines/subspace.hpp"

#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace cstuner::baselines {

std::vector<Combo> enumerate_combos(const space::SearchSpace& space,
                                    const std::vector<space::ParamId>& params,
                                    std::size_t cap, Rng& rng) {
  CSTUNER_CHECK(!params.empty());
  CSTUNER_CHECK(cap >= 1);
  // Cartesian size (saturating).
  std::size_t total = 1;
  bool overflow = false;
  for (auto id : params) {
    const std::size_t card = space.parameter(id).cardinality();
    if (total > cap * 4 / card + 1) overflow = true;
    total *= card;
    if (total > (cap << 4)) {
      overflow = true;
      break;
    }
  }
  std::vector<Combo> combos;
  if (!overflow && total <= cap) {
    combos.reserve(total);
    Combo current(params.size());
    // Odometer enumeration.
    std::vector<std::size_t> idx(params.size(), 0);
    for (;;) {
      for (std::size_t i = 0; i < params.size(); ++i) {
        current[i] = space.parameter(params[i]).values[idx[i]];
      }
      combos.push_back(current);
      std::size_t d = 0;
      while (d < params.size()) {
        if (++idx[d] < space.parameter(params[d]).cardinality()) break;
        idx[d] = 0;
        ++d;
      }
      if (d == params.size()) break;
    }
    return combos;
  }
  // Random distinct sample.
  std::unordered_set<std::uint64_t> seen;
  std::size_t attempts = 0;
  while (combos.size() < cap && attempts < cap * 64) {
    ++attempts;
    Combo c(params.size());
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (std::size_t i = 0; i < params.size(); ++i) {
      const auto& p = space.parameter(params[i]);
      c[i] = p.values[rng.index(p.cardinality())];
      h = hash_combine(h, static_cast<std::uint64_t>(c[i]));
    }
    if (seen.insert(h).second) combos.push_back(std::move(c));
  }
  return combos;
}

space::Setting apply_combo(const space::SearchSpace& space,
                           const std::vector<space::ParamId>& params,
                           const Combo& combo, space::Setting setting) {
  CSTUNER_CHECK(combo.size() == params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    setting.set(params[i], combo[i]);
  }
  // Group/stage values grafted onto a base can violate cross-group rules;
  // both Garvey and Artemis generate compilable variants, so repair into
  // the valid space rather than discarding the sample.
  return space.checker().repaired(setting);
}

double fitness_of(double time_ms) {
  if (!std::isfinite(time_ms) || time_ms <= 0.0) return 1e-9;
  return 1000.0 / time_ms;
}

space::Setting genome_to_setting(const space::SearchSpace& space,
                                 const ga::Genome& genome) {
  space::Setting s;
  for (std::size_t i = 0; i < space::kParamCount; ++i) {
    const auto& p = space.parameters()[i];
    s.set(static_cast<space::ParamId>(i),
          p.values[genome[i] % p.values.size()]);
  }
  return space.checker().canonicalized(s);
}

ga::Genome setting_to_genome(const space::SearchSpace& space,
                             const space::Setting& setting) {
  ga::Genome genome(space::kParamCount);
  for (std::size_t i = 0; i < space::kParamCount; ++i) {
    const auto& p = space.parameters()[i];
    genome[i] = static_cast<std::uint32_t>(
        p.value_index(setting.get(static_cast<space::ParamId>(i))));
  }
  return genome;
}

std::vector<std::uint32_t> parameter_cardinalities(
    const space::SearchSpace& space) {
  std::vector<std::uint32_t> cards;
  cards.reserve(space::kParamCount);
  for (const auto& p : space.parameters()) {
    cards.push_back(static_cast<std::uint32_t>(p.cardinality()));
  }
  return cards;
}

}  // namespace cstuner::baselines
