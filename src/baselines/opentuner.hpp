#pragma once
// OpenTuner baseline [3], as configured in the paper's evaluation: a global
// genetic algorithm over the *entire* parameter space (one gene per Table I
// parameter, no grouping, no sampling), with GA options matching csTuner's.
// Two extra OpenTuner-style search techniques — greedy hill climbing and
// differential evolution — are provided for the extension benchmarks.

#include "ga/island_ga.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::baselines {

enum class OpenTunerTechnique {
  kGlobalGa,              ///< the paper's configuration (§V-A2)
  kHillClimber,
  kDifferentialEvolution,
};

struct OpenTunerOptions {
  OpenTunerTechnique technique = OpenTunerTechnique::kGlobalGa;
  ga::GaOptions ga;  ///< population layout shared by all techniques
  std::uint64_t seed = 11;
};

class OpenTuner : public tuner::Tuner {
 public:
  explicit OpenTuner(OpenTunerOptions options = {});

  std::string name() const override;
  void tune(tuner::Evaluator& evaluator,
            const tuner::StopCriteria& stop) override;

 private:
  void tune_global_ga(tuner::Evaluator& evaluator,
                      const tuner::StopCriteria& stop);
  void tune_hill_climber(tuner::Evaluator& evaluator,
                         const tuner::StopCriteria& stop);
  void tune_differential_evolution(tuner::Evaluator& evaluator,
                                   const tuner::StopCriteria& stop);

  OpenTunerOptions options_;
};

}  // namespace cstuner::baselines
