#include "baselines/garvey.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "baselines/subspace.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace cstuner::baselines {

using namespace space;

Garvey::Garvey(GarveyOptions options) : options_(options) {}

void Garvey::set_dataset(tuner::PerfDataset dataset) {
  preset_dataset_ = std::move(dataset);
}

void Garvey::tune(tuner::Evaluator& evaluator,
                  const tuner::StopCriteria& stop) {
  CSTUNER_TRACE_PHASE("tune.garvey");
  const auto& space = evaluator.space();
  Rng rng(options_.seed);

  // --- Offline dataset for the random forest.
  tuner::PerfDataset dataset =
      preset_dataset_.has_value()
          ? *preset_dataset_
          : tuner::collect_dataset(space, evaluator.simulator(),
                                   options_.dataset_size, rng,
                                   evaluator.thread_pool());

  // --- Stage 1: random forest predicts the best memory type. The forest is
  // a regression model time = f(setting); we query it for each of the four
  // (shared, constant) combinations averaged over the dataset settings and
  // fix the flags to the predicted-fastest combination.
  std::vector<double> features;
  features.reserve(dataset.size() * kParamCount);
  for (const auto& s : dataset.settings) {
    const auto row = SearchSpace::to_feature_row(s);
    features.insert(features.end(), row.begin(), row.end());
  }
  ml::TableView table{features, dataset.size(), kParamCount};
  std::vector<double> log_times(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    log_times[i] = std::log(std::max(dataset.times_ms[i], 1e-9));
  }
  ml::RandomForest forest(ml::TreeTask::kRegression, options_.forest);
  forest.fit(table, log_times, rng);

  double best_pred = std::numeric_limits<double>::infinity();
  for (std::int64_t sh : {kOff, kOn}) {
    for (std::int64_t co : {kOff, kOn}) {
      double sum = 0.0;
      for (const auto& s : dataset.settings) {
        Setting probe = s;
        probe.set(kUseShared, sh);
        probe.set(kUseConstant, co);
        sum += forest.predict(SearchSpace::to_feature_row(probe));
      }
      if (sum < best_pred) {
        best_pred = sum;
        chosen_memory_ = {sh, co};
      }
    }
  }

  // --- Stage 2: grouping by dimension (expert knowledge).
  const std::vector<std::vector<ParamId>> groups = {
      {kTBx, kUFx, kCMx, kBMx},
      {kTBy, kUFy, kCMy, kBMy},
      {kTBz, kUFz, kCMz, kBMz},
      {kUseStreaming, kSD, kSB},
      {kUseRetiming, kUsePrefetching},
  };

  // Base: the naive launch configuration with the predicted memory flags —
  // Garvey starts its per-group exhaustive search from scratch; only the
  // memory-type decision carries over from the forest.
  Setting base;
  base.set(kTBx, 32);
  base.set(kUseShared, chosen_memory_.first);
  base.set(kUseConstant, chosen_memory_.second);
  base = space.checker().repaired(base);
  evaluator.evaluate(base);

  // --- Stage 3: per-group exhaustive search over a random sample.
  for (const auto& group : groups) {
    if (stop.reached(evaluator)) break;
    auto combos =
        enumerate_combos(space, group, options_.max_group_combos, rng);
    rng.shuffle(combos);
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(options_.sampling_ratio *
                                    static_cast<double>(combos.size())));
    combos.resize(std::min(combos.size(), keep));

    Combo best_combo;
    double best_time = std::numeric_limits<double>::infinity();
    // Measure the sampled combos one iteration-sized batch at a time so the
    // per-group sweep fans across the pool.
    const auto chunk_size =
        static_cast<std::size_t>(options_.evals_per_iteration);
    std::size_t c = 0;
    while (c < combos.size() && !stop.reached(evaluator)) {
      const std::size_t chunk_end = std::min(c + chunk_size, combos.size());
      std::vector<Setting> candidates;
      candidates.reserve(chunk_end - c);
      for (std::size_t k = c; k < chunk_end; ++k) {
        candidates.push_back(apply_combo(space, group, combos[k], base));
      }
      const auto chunk_results = evaluator.evaluate_batch(candidates);
      for (std::size_t k = 0; k < chunk_results.size(); ++k) {
        if (chunk_results[k].time_or_inf() < best_time) {
          best_time = chunk_results[k].time_or_inf();
          best_combo = combos[c + k];
        }
      }
      evaluator.mark_iteration();
      c = chunk_end;
    }
    if (!best_combo.empty() && std::isfinite(best_time)) {
      base = apply_combo(space, group, best_combo, base);
    }
  }
}

}  // namespace cstuner::baselines
