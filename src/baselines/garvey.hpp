#pragma once
// Garvey & Abdelrahman baseline [13], re-implemented from its description as
// the paper did: (1) a random forest predicts the best memory-type
// configuration (shared/constant flags) for the stencil, (2) the remaining
// parameters are grouped *by dimension* (the expert-knowledge grouping the
// paper contrasts with csTuner's statistical grouping), and (3) each group
// is searched exhaustively over a random sample of its value combinations
// (the paper's configured "optimization of grouping by dimension ...
// sampling ratio also set to 10%").

#include <optional>

#include "ml/random_forest.hpp"
#include "tuner/dataset.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::baselines {

struct GarveyOptions {
  double sampling_ratio = 0.10;   ///< of each group's cartesian size
  std::size_t dataset_size = 128; ///< forest training set
  /// Enumeration cap per group before the sampling ratio applies. Keeps a
  /// group's exhaustive stage to a handful of iterations, matching the
  /// quick-but-unstable convergence the paper observes for Garvey.
  std::size_t max_group_combos = 2048;
  int evals_per_iteration = 32;   ///< = GA population size, for fairness
  ml::ForestConfig forest;
  std::uint64_t seed = 13;
};

class Garvey : public tuner::Tuner {
 public:
  explicit Garvey(GarveyOptions options = {});

  std::string name() const override { return "Garvey"; }
  void tune(tuner::Evaluator& evaluator,
            const tuner::StopCriteria& stop) override;

  /// Inject a shared dataset (fair comparisons reuse csTuner's).
  void set_dataset(tuner::PerfDataset dataset);

  /// Memory flags chosen by the forest in the latest run (for tests).
  std::pair<std::int64_t, std::int64_t> chosen_memory_flags() const {
    return chosen_memory_;
  }

 private:
  GarveyOptions options_;
  std::optional<tuner::PerfDataset> preset_dataset_;
  std::pair<std::int64_t, std::int64_t> chosen_memory_{1, 1};
};

}  // namespace cstuner::baselines
