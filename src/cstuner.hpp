#pragma once
// Umbrella header: the public API of the csTuner reproduction.
//
// Typical usage (see examples/quickstart.cpp):
//
//   auto spec = cstuner::stencil::make_stencil("j3d7pt");
//   cstuner::space::SearchSpace space(spec);
//   cstuner::gpusim::Simulator sim(cstuner::gpusim::a100());
//   cstuner::tuner::Evaluator evaluator(sim, space);
//   cstuner::core::CsTuner tuner;
//   tuner.tune(evaluator, {.max_virtual_seconds = 100.0});
//   // evaluator.best_setting() / evaluator.best_time_ms()

#include "analysis/analyzer.hpp"
#include "analysis/pruner.hpp"
#include "analysis/space_lint.hpp"
#include "baselines/artemis.hpp"
#include "baselines/garvey.hpp"
#include "baselines/opentuner.hpp"
#include "codegen/cuda_codegen.hpp"
#include "core/cs_tuner.hpp"
#include "exec/cpu_executor.hpp"
#include "gpusim/simulator.hpp"
#include "search/meta_tuner.hpp"
#include "search/optimizer.hpp"
#include "search/registry.hpp"
#include "search/tournament.hpp"
#include "space/search_space.hpp"
#include "stencil/dsl.hpp"
#include "stencil/stencils.hpp"
#include "tuner/evaluator.hpp"
