#pragma once
// Name -> factory registry for the optimizer zoo. The global registry ships
// with every built-in optimizer pre-registered; downstream code can add its
// own (docs/optimizers.md, "Registering a new optimizer").

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ga/island_ga.hpp"
#include "search/optimizer.hpp"

namespace cstuner::search {

/// Knobs shared across factories. Per-optimizer parameters keep their
/// searcher's historical defaults; only the cross-cutting ones are here.
struct OptimizerOptions {
  std::uint64_t seed = 21;
  /// GA shape (population/crossover/migration) for the GA-family ports;
  /// also sizes the OpenTuner hill/DE populations, as in the baselines.
  ga::GaOptions ga;
};

class OptimizerRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Optimizer>(const OptimizerOptions&)>;

  /// Registers (or replaces) a factory under `name`.
  void add(const std::string& name, Factory factory);

  /// Instantiates by name. Throws UsageError — listing every registered
  /// name — when the name is unknown or the registry is empty, so the CLI
  /// error message always tells the user what they can ask for.
  std::unique_ptr<Optimizer> make(const std::string& name,
                                  const OptimizerOptions& options = {}) const;

  bool contains(const std::string& name) const;
  /// Registered names, sorted (the registry iterates deterministically).
  std::vector<std::string> names() const;
  std::size_t size() const { return factories_.size(); }

 private:
  std::map<std::string, Factory> factories_;
};

/// The process-wide registry, populated with the built-in zoo on first use:
/// the ported searchers (island-ga, opentuner-ga, opentuner-de, hill,
/// garvey, artemis, random, spread) and the native ones (anneal, pso, de,
/// surrogate).
OptimizerRegistry& optimizer_registry();

}  // namespace cstuner::search
