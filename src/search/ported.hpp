#pragma once
// The legacy searchers, re-expressed as step machines behind the
// search::Optimizer interface. Every port reproduces its pre-refactor loop
// exactly — same RNG draw order, same batch composition, same iteration
// marks, same stop-check boundaries — so on a fixed seed it lands on the
// same best setting, virtual time and unique-evaluation count as the
// original tuner (pinned by tests/test_optimizer_zoo.cpp).
//
// All ports resume by journal replay: a fresh instance driven against a
// journal-loaded evaluator replays its deterministic control flow, with the
// journaled measurements served back (docs/fault-tolerance.md). They do not
// implement restore_state.

#include <cstdint>
#include <optional>

#include "analysis/pruner.hpp"
#include "baselines/artemis.hpp"
#include "baselines/garvey.hpp"
#include "baselines/subspace.hpp"
#include "ga/island_ga.hpp"
#include "ml/random_forest.hpp"
#include "search/optimizer.hpp"
#include "space/lazy_universe.hpp"

namespace cstuner::search {

/// Serial step-machine equivalent of the concurrent island GA (and of the
/// OpenTuner global-GA baseline, which wraps it). Islands breed in rank
/// order from per-rank RNG streams — the same streams the concurrent
/// version uses — and a whole generation across all islands is measured as
/// one batch: per-setting results are pure, clock charges are commutative
/// integers, and duplicate keys are charged once either way, so the merged
/// batch is bit-equivalent to the original concurrent per-island batches.
class IslandGaOptimizer : public Optimizer {
 public:
  IslandGaOptimizer(std::string name, ga::GaOptions ga, std::uint64_t seed);

  std::string name() const override { return name_; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  /// The original marks once per generation (inside should_stop), never
  /// after the initial population.
  bool iteration_boundary() const override { return mark_; }
  /// The original's first stop consult happens after generation 1; nothing
  /// guards the initial population or the gen-1 breeding.
  bool stop_check_allowed() const override { return gens_done_ >= 1; }

 private:
  struct Island {
    Rng rng{0};
    std::vector<ga::Genome> genomes;
    std::vector<double> fitnesses;
  };

  /// Converts one island's pending genomes to pruned candidates, appending
  /// to `batch` and recording each slot's batch index (-1 = pruned).
  void encode_island(std::size_t r, std::vector<space::Setting>& batch);

  std::string name_;
  ga::GaOptions ga_;
  std::uint64_t seed_;

  const space::SearchSpace* space_ = nullptr;
  std::optional<analysis::StaticPruner> pruner_;
  std::vector<std::uint32_t> cards_;
  std::vector<Island> islands_;
  /// Offspring awaiting fitness, per island, plus each slot's index into
  /// the proposed batch (-1 when the pruner rejected it).
  std::vector<std::vector<ga::Genome>> pending_;
  std::vector<std::vector<std::ptrdiff_t>> slot_index_;
  bool initialized_ = false;
  bool mark_ = false;
  std::size_t gens_done_ = 0;
};

/// OpenTuner's greedy hill climber (baselines::OpenTunerTechnique::
/// kHillClimber) as a step machine: one current point, a batch of adjacent
/// one-parameter moves per iteration, random restart on local optima.
class HillClimbOptimizer : public Optimizer {
 public:
  HillClimbOptimizer(ga::GaOptions ga, std::uint64_t seed);

  std::string name() const override { return "hill"; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  bool iteration_boundary() const override { return mark_; }
  bool stop_check_allowed() const override { return allow_stop_; }

 private:
  enum class Phase { kStart, kMoves, kRestart };

  std::uint64_t seed_;
  int moves_per_iteration_;

  const space::SearchSpace* space_ = nullptr;
  Rng rng_{0};
  Phase phase_ = Phase::kStart;
  space::Setting current_;
  double current_time_ = 0.0;
  bool mark_ = false;
  bool allow_stop_ = false;
};

/// OpenTuner's DE/rand/1/bin (baselines::OpenTunerTechnique::
/// kDifferentialEvolution) as a step machine, including its stale-
/// generation exhaustion rule.
class OpenTunerDeOptimizer : public Optimizer {
 public:
  OpenTunerDeOptimizer(ga::GaOptions ga, std::uint64_t seed);

  std::string name() const override { return "opentuner-de"; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  bool iteration_boundary() const override { return mark_; }
  bool stop_check_allowed() const override { return allow_stop_; }

 private:
  std::uint64_t seed_;
  std::size_t pop_size_;

  const space::SearchSpace* space_ = nullptr;
  tuner::Evaluator* evaluator_ = nullptr;
  std::optional<analysis::StaticPruner> pruner_;
  std::vector<std::uint32_t> cards_;
  Rng rng_{0};
  bool seeded_ = false;
  std::vector<std::vector<double>> population_;
  std::vector<double> times_;
  std::vector<std::vector<double>> trials_;
  std::vector<std::size_t> kept_pos_;
  std::size_t evals_before_ = 0;
  int stale_generations_ = 0;
  bool mark_ = false;
  bool allow_stop_ = false;
};

/// Garvey & Abdelrahman as a step machine: the offline stages (dataset
/// collection, forest fit, memory-flag choice) run at bind(); the per-group
/// sampled-exhaustive sweeps then flow through propose/observe one
/// iteration-sized chunk at a time. Group combos are enumerated lazily at
/// the same control-flow points as the original, so the RNG stream never
/// diverges from it.
class GarveyOptimizer : public Optimizer {
 public:
  explicit GarveyOptimizer(baselines::GarveyOptions options);

  std::string name() const override { return "garvey"; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  bool iteration_boundary() const override { return mark_; }
  bool stop_check_allowed() const override { return allow_stop_; }

 private:
  baselines::GarveyOptions options_;

  const space::SearchSpace* space_ = nullptr;
  Rng rng_{0};
  std::vector<std::vector<space::ParamId>> groups_;
  space::Setting base_;
  bool base_proposed_ = false;
  std::size_t group_idx_ = 0;
  bool combos_ready_ = false;
  std::vector<baselines::Combo> combos_;
  std::size_t cursor_ = 0;
  std::size_t chunk_start_ = 0;
  baselines::Combo best_combo_;
  double best_time_ = 0.0;
  bool mark_ = false;
  bool allow_stop_ = false;
};

/// Artemis as a step machine: seed batch, then strictly per-eval stage
/// sweeps with an iteration mark every evals_per_iteration evaluations and
/// a trailing mark at finish() — exactly the original's cadence.
class ArtemisOptimizer : public Optimizer {
 public:
  explicit ArtemisOptimizer(baselines::ArtemisOptions options);

  std::string name() const override { return "artemis"; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  bool iteration_boundary() const override { return mark_; }
  bool stop_check_allowed() const override { return allow_stop_; }
  void finish(tuner::Evaluator& evaluator) override;

 private:
  struct Candidate {
    space::Setting setting;
    double time_ms = 0.0;
  };

  void close_stage();

  baselines::ArtemisOptions options_;

  const space::SearchSpace* space_ = nullptr;
  Rng rng_{0};
  std::vector<std::vector<space::ParamId>> stages_;
  bool seeded_ = false;
  std::vector<Candidate> survivors_;
  std::vector<Candidate> pool_;
  std::size_t stage_idx_ = 0;
  std::size_t cand_idx_ = 0;
  std::size_t combo_idx_ = 0;
  bool stage_open_ = false;
  bool combos_ready_ = false;
  std::vector<baselines::Combo> combos_;
  std::size_t combos_per_candidate_ = 0;
  std::size_t since_mark_ = 0;
  bool mark_ = false;
  bool allow_stop_ = false;
};

/// Pure random-valid sampling, one fixed-size batch per step. Each step
/// draws from an RNG derived from (seed, step), so the whole state is the
/// step counter — restore_state resumes mid-run exactly.
class RandomOptimizer : public Optimizer {
 public:
  explicit RandomOptimizer(std::uint64_t seed);

  std::string name() const override { return "random"; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  bool restore_state(const JsonValue& state) override;

  static constexpr std::size_t kBatch = 32;

 private:
  std::uint64_t seed_;
  const space::SearchSpace* space_ = nullptr;
};

/// Deterministic spread sample of the valid universe, consumed through a
/// space::LazyUniverse cursor in fixed-size batches; exhausts when the
/// sample is drained. State is the step counter (the sample itself is a
/// pure function of the space and seed), so restore_state resumes exactly.
class SpreadOptimizer : public Optimizer {
 public:
  explicit SpreadOptimizer(std::uint64_t seed,
                           std::size_t sample_size = kDefaultSample);

  std::string name() const override { return "spread"; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  bool restore_state(const JsonValue& state) override;

  static constexpr std::size_t kBatch = 32;
  static constexpr std::size_t kDefaultSample = 4096;

 private:
  std::uint64_t seed_;
  std::size_t sample_size_;
  std::vector<space::Setting> sample_;
  bool sampled_ = false;
};

}  // namespace cstuner::search
