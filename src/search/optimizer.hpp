#pragma once
// The pluggable search interface behind every auto-tuner in the optimizer
// zoo (docs/optimizers.md). An Optimizer is a step machine:
//
//   bind(evaluator)            once, before the first propose
//   propose() -> batch         the next candidates to measure
//   observe(batch, results)    the measured outcomes, same order
//   ... repeat ...
//   finish(evaluator)          after the last observe
//
// The driver (run_optimizer) owns the loop: it measures each proposed batch
// through Evaluator::evaluate_batch — which charges the virtual clock,
// caches, journals and keeps every result a pure function of the setting —
// and consults the StopCriteria between steps. Because an optimizer sees
// the world only through batch results, and those are bit-identical for any
// worker count, every optimizer written against this interface is
// deterministic across 0/4/8 workers for free.
//
// Two hooks exist solely so the ported legacy searchers can reproduce their
// pre-refactor loops exactly (the regression pins in
// tests/test_optimizer_zoo.cpp):
//   - iteration_boundary(): whether the driver marks an evaluator iteration
//     after the step just observed (a GA marks per generation, Artemis per
//     32 single evaluations);
//   - stop_check_allowed(): whether the driver may consult the stop
//     criteria before the NEXT propose. Ports return false at mid-phase
//     points their original loops did not guard — e.g. between a GA's
//     initial population and its first generation, or before a
//     hill-climber's restart evaluation.
//
// Checkpointing: serialize_state()/restore_state() round-trip the
// optimizer's own step state (doubles as IEEE-754 bit patterns, like the
// journal). The natively-checkpointable optimizers (anneal, pso, de,
// surrogate, random, spread) restore mid-run; the ported searchers keep the
// journal-replay contract instead — a fresh instance re-driven against a
// journal-loaded evaluator replays bit-identically (docs/fault-tolerance.md).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "space/setting.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::search {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Registry name ("anneal", "island-ga", ...).
  virtual std::string name() const = 0;

  /// Binds the optimizer to the engine it will be driven against: resolve
  /// the search space, allocate populations, run offline stages (Garvey's
  /// dataset + forest). Called exactly once, before the first propose().
  /// Must not evaluate anything — all measurements flow through propose().
  virtual void bind(tuner::Evaluator& evaluator) = 0;

  /// The next batch of candidates to measure. An empty batch means the
  /// optimizer has exhausted its search (the paper's "evaluated completely"
  /// case); the driver stops.
  virtual std::vector<space::Setting> propose() = 0;

  /// Outcomes for the batch, same order. The only channel by which
  /// measurements reach the optimizer.
  virtual void observe(const std::vector<space::Setting>& batch,
                       const std::vector<tuner::EvalResult>& results) = 0;

  /// Whether the driver marks an evaluator iteration after the step just
  /// observed. Consulted once per step, after observe().
  virtual bool iteration_boundary() const { return true; }

  /// Whether the driver may consult the stop criteria before the next
  /// propose(). Consulted once per step, after observe() (and before the
  /// first propose with no step observed yet).
  virtual bool stop_check_allowed() const { return true; }

  /// Called once after the loop ends (budget, exhaustion or cancellation
  /// between steps). Ports emit trailing iteration marks here.
  virtual void finish(tuner::Evaluator& evaluator) { (void)evaluator; }

  /// Serializes the optimizer's step state as one JSON object. The default
  /// emits only the identity and completed-step count — enough for the
  /// journal-replay resume contract, which re-drives a fresh instance.
  virtual void serialize_state(JsonWriter& json) const;

  /// Restores from a serialize_state() object. Returns true when the
  /// optimizer can continue mid-run from that state; false means the
  /// caller should resume by journal replay (fresh instance, journal-loaded
  /// evaluator) instead. The default restores nothing and returns false.
  virtual bool restore_state(const JsonValue& state);

  /// Completed propose/observe rounds, maintained by the driver.
  std::size_t completed_steps() const { return completed_steps_; }
  void note_step() { ++completed_steps_; }

 protected:
  std::size_t completed_steps_ = 0;
};

/// Outcome of one driver run (counters only; results live in the
/// evaluator's best/trace state).
struct DriveResult {
  std::size_t steps = 0;      ///< propose/observe rounds completed
  std::size_t proposals = 0;  ///< settings proposed across all rounds
  bool exhausted = false;     ///< the optimizer ran out of candidates
};

/// Drives `optimizer` against `evaluator` until the stop criteria are met
/// (at a boundary the optimizer allows) or the optimizer exhausts its
/// candidates. When a Checkpoint is attached to the evaluator, the
/// optimizer's serialized state is pushed into it at every iteration
/// boundary, just before the mark flushes the journal.
DriveResult run_optimizer(Optimizer& optimizer, tuner::Evaluator& evaluator,
                          const tuner::StopCriteria& stop);

}  // namespace cstuner::search
