#include "search/optimizer.hpp"

#include "obs/obs.hpp"

namespace cstuner::search {

void Optimizer::serialize_state(JsonWriter& json) const {
  json.begin_object();
  json.field("optimizer", name());
  json.field("steps", static_cast<std::uint64_t>(completed_steps_));
  json.end_object();
}

bool Optimizer::restore_state(const JsonValue& state) {
  (void)state;
  return false;
}

DriveResult run_optimizer(Optimizer& optimizer, tuner::Evaluator& evaluator,
                          const tuner::StopCriteria& stop) {
  CSTUNER_TRACE_PHASE("tune.optimizer");
  optimizer.bind(evaluator);
  DriveResult out;
  bool stop_allowed = optimizer.stop_check_allowed();
  for (;;) {
    if (stop_allowed && stop.reached(evaluator)) break;
    const std::vector<space::Setting> batch = optimizer.propose();
    if (batch.empty()) {
      out.exhausted = true;
      break;
    }
    const auto results = evaluator.evaluate_batch(batch);
    optimizer.observe(batch, results);
    optimizer.note_step();
    ++out.steps;
    out.proposals += batch.size();
    if (optimizer.iteration_boundary()) {
      if (tuner::Checkpoint* cp = evaluator.checkpoint()) {
        JsonWriter state;
        optimizer.serialize_state(state);
        cp->set_optimizer_state_json(state.str());
      }
      evaluator.mark_iteration();
    }
    stop_allowed = optimizer.stop_check_allowed();
  }
  optimizer.finish(evaluator);
  return out;
}

}  // namespace cstuner::search
