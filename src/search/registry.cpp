#include "search/registry.hpp"

#include <utility>

#include "baselines/artemis.hpp"
#include "baselines/garvey.hpp"
#include "common/error.hpp"
#include "search/novel.hpp"
#include "search/ported.hpp"

namespace cstuner::search {

namespace {

std::string joined_names(const OptimizerRegistry& registry) {
  const auto names = registry.names();
  if (names.empty()) return "none";
  std::string out;
  for (const auto& name : names) {
    if (!out.empty()) out += ", ";
    out += name;
  }
  return out;
}

}  // namespace

void OptimizerRegistry::add(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

std::unique_ptr<Optimizer> OptimizerRegistry::make(
    const std::string& name, const OptimizerOptions& options) const {
  if (factories_.empty()) {
    throw UsageError("no optimizers registered (available: none)");
  }
  const auto it = factories_.find(name);
  if (it == factories_.end()) {
    throw UsageError("unknown optimizer '" + name +
                     "' (available: " + joined_names(*this) + ")");
  }
  return it->second(options);
}

bool OptimizerRegistry::contains(const std::string& name) const {
  return factories_.count(name) != 0;
}

std::vector<std::string> OptimizerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

OptimizerRegistry& optimizer_registry() {
  static OptimizerRegistry registry = [] {
    OptimizerRegistry r;
    // --- Ported searchers (pinned against their originals).
    r.add("island-ga", [](const OptimizerOptions& o) {
      // The zoo's island entry runs a wider archipelago than the OpenTuner
      // wrapper so the two GA entries genuinely differ.
      ga::GaOptions ga = o.ga;
      ga.sub_populations = 4;
      return std::make_unique<IslandGaOptimizer>("island-ga", ga, o.seed);
    });
    r.add("opentuner-ga", [](const OptimizerOptions& o) {
      return std::make_unique<IslandGaOptimizer>("opentuner-ga", o.ga,
                                                 o.seed);
    });
    r.add("hill", [](const OptimizerOptions& o) {
      return std::make_unique<HillClimbOptimizer>(o.ga, o.seed);
    });
    r.add("opentuner-de", [](const OptimizerOptions& o) {
      return std::make_unique<OpenTunerDeOptimizer>(o.ga, o.seed);
    });
    r.add("garvey", [](const OptimizerOptions& o) {
      baselines::GarveyOptions options;
      options.seed = o.seed;
      return std::make_unique<GarveyOptimizer>(options);
    });
    r.add("artemis", [](const OptimizerOptions& o) {
      baselines::ArtemisOptions options;
      options.seed = o.seed;
      return std::make_unique<ArtemisOptimizer>(options);
    });
    r.add("random", [](const OptimizerOptions& o) {
      return std::make_unique<RandomOptimizer>(o.seed);
    });
    r.add("spread", [](const OptimizerOptions& o) {
      return std::make_unique<SpreadOptimizer>(o.seed);
    });
    // --- Native optimizers.
    r.add("anneal", [](const OptimizerOptions& o) {
      return std::make_unique<AnnealOptimizer>(o.seed);
    });
    r.add("pso", [](const OptimizerOptions& o) {
      return std::make_unique<PsoOptimizer>(o.seed);
    });
    r.add("de", [](const OptimizerOptions& o) {
      return std::make_unique<NativeDeOptimizer>(o.seed);
    });
    r.add("surrogate", [](const OptimizerOptions& o) {
      return std::make_unique<SurrogateOptimizer>(o.seed);
    });
    return r;
  }();
  return registry;
}

}  // namespace cstuner::search
