#pragma once
// Iso-budget optimizer tournament (docs/optimizers.md): every registered
// optimizer runs against every stencil under the same virtual-time budget,
// same seed and a fresh evaluator per cell, then cells are ranked per
// stencil by best time. The JSON leaderboard is byte-stable — fixed key
// order, ranks and best times as numeric leaves keyed by optimizer name —
// so CI gates it against bench/baseline_tournament.json with
// `cstuner report --tol 0%` (wall-clock keys carry the "wall" prefix the
// comparator ignores).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ga/island_ga.hpp"

namespace cstuner::search {

struct TournamentOptions {
  /// Stencils to race on; empty = all stencils in the registry.
  std::vector<std::string> stencils;
  std::string arch = "a100";
  /// Iso-time budget per (stencil, optimizer) cell, virtual seconds.
  double budget_s = 10.0;
  std::uint64_t seed = 4242;
  /// Optimizer subset; empty = everything in the optimizer registry.
  std::vector<std::string> optimizers;
  /// GA shape handed to the GA-family optimizers.
  ga::GaOptions ga;
};

/// One (stencil, optimizer) race outcome.
struct TournamentCell {
  std::string stencil;
  std::string optimizer;
  double best_ms = 0.0;
  double virtual_s = 0.0;
  std::size_t evals = 0;
  std::size_t iterations = 0;
  std::size_t steps = 0;
  bool exhausted = false;
  std::size_t rank = 0;  ///< 1-based within the stencil
  double wall_s = 0.0;   ///< informational; never gated
};

struct TournamentResult {
  TournamentOptions options;
  /// Stencil-major, then leaderboard order (rank 1 first).
  std::vector<TournamentCell> cells;
  double wall_s = 0.0;

  /// All cells of one stencil, in leaderboard order.
  std::vector<const TournamentCell*> stencil_cells(
      const std::string& stencil) const;
  /// Mean rank of one optimizer across every stencil raced.
  double mean_rank(const std::string& optimizer) const;
  /// Number of stencils the optimizer won (rank 1).
  std::size_t wins(const std::string& optimizer) const;
};

/// Runs the full tournament. Every cell gets a fresh SearchSpace /
/// Simulator / Evaluator seeded identically (iso noise), so cells are
/// independent and the whole result is a pure function of the options.
/// Fault injection is armed from CSTUNER_FAULT_RATE like the bench
/// harness; CI runs the gate without it.
TournamentResult run_tournament(const TournamentOptions& options = {});

/// The byte-stable leaderboard JSON (see header comment for the gating
/// contract).
std::string tournament_json(const TournamentResult& result);

/// Human-readable leaderboard table.
void print_tournament(const TournamentResult& result, std::ostream& os);

}  // namespace cstuner::search
