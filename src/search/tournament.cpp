#include "search/tournament.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <ostream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "gpusim/fault_model.hpp"
#include "gpusim/gpu_arch.hpp"
#include "gpusim/simulator.hpp"
#include "obs/obs.hpp"
#include "search/registry.hpp"
#include "space/search_space.hpp"
#include "stencil/stencils.hpp"
#include "tuner/evaluator.hpp"

namespace cstuner::search {

namespace {

/// Finite best times rank ahead of "found nothing"; ties break on fewer
/// evaluations (cheaper search wins), then name, so the order is total and
/// reproducible.
bool leaderboard_less(const TournamentCell& a, const TournamentCell& b) {
  const bool fa = std::isfinite(a.best_ms);
  const bool fb = std::isfinite(b.best_ms);
  if (fa != fb) return fa;
  if (fa && a.best_ms != b.best_ms) return a.best_ms < b.best_ms;
  if (a.evals != b.evals) return a.evals < b.evals;
  return a.optimizer < b.optimizer;
}

/// JSON has no infinity; an optimizer that found nothing reports -1.
double json_ms(double best_ms) {
  return std::isfinite(best_ms) ? best_ms : -1.0;
}

}  // namespace

std::vector<const TournamentCell*> TournamentResult::stencil_cells(
    const std::string& stencil) const {
  std::vector<const TournamentCell*> out;
  for (const auto& cell : cells) {
    if (cell.stencil == stencil) out.push_back(&cell);
  }
  return out;
}

double TournamentResult::mean_rank(const std::string& optimizer) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const auto& cell : cells) {
    if (cell.optimizer != optimizer) continue;
    sum += static_cast<double>(cell.rank);
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::size_t TournamentResult::wins(const std::string& optimizer) const {
  std::size_t count = 0;
  for (const auto& cell : cells) {
    if (cell.optimizer == optimizer && cell.rank == 1) ++count;
  }
  return count;
}

TournamentResult run_tournament(const TournamentOptions& options) {
  CSTUNER_TRACE_PHASE("tournament");
  TournamentResult result;
  result.options = options;
  if (result.options.stencils.empty()) {
    result.options.stencils = stencil::stencil_names();
  }
  if (result.options.optimizers.empty()) {
    result.options.optimizers = optimizer_registry().names();
  }
  const auto& registry = optimizer_registry();
  // Validate up front so a typo fails before any cell has run.
  for (const auto& name : result.options.optimizers) {
    if (!registry.contains(name)) (void)registry.make(name);
  }

  const auto wall_start = std::chrono::steady_clock::now();
  const double fault_rate = gpusim::FaultConfig::rate_from_env();
  const tuner::StopCriteria stop{.max_virtual_seconds =
                                     result.options.budget_s};

  for (const auto& stencil_name : result.options.stencils) {
    const auto spec = stencil::make_stencil(stencil_name);
    const space::SearchSpace space(spec);
    const gpusim::Simulator simulator(
        gpusim::arch_by_name(result.options.arch));
    std::vector<TournamentCell> stencil_cells;
    for (const auto& optimizer_name : result.options.optimizers) {
      // Fresh evaluator per cell, identical seed: iso noise, iso budget.
      tuner::Evaluator evaluator(simulator, space, {}, result.options.seed);
      if (fault_rate > 0.0) {
        evaluator.set_fault_injection(
            gpusim::FaultConfig::uniform(fault_rate, result.options.seed),
            spec.name);
      }
      OptimizerOptions opt_options;
      opt_options.seed = result.options.seed;
      opt_options.ga = result.options.ga;
      const auto optimizer = registry.make(optimizer_name, opt_options);
      const auto cell_start = std::chrono::steady_clock::now();
      const DriveResult drive = run_optimizer(*optimizer, evaluator, stop);
      TournamentCell cell;
      cell.stencil = stencil_name;
      cell.optimizer = optimizer_name;
      cell.best_ms = evaluator.best_time_ms();
      cell.virtual_s = evaluator.virtual_time_s();
      cell.evals = evaluator.unique_evaluations();
      cell.iterations = evaluator.iterations();
      cell.steps = drive.steps;
      cell.exhausted = drive.exhausted;
      cell.wall_s = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - cell_start)
                        .count();
      stencil_cells.push_back(std::move(cell));
    }
    std::sort(stencil_cells.begin(), stencil_cells.end(), leaderboard_less);
    for (std::size_t i = 0; i < stencil_cells.size(); ++i) {
      stencil_cells[i].rank = i + 1;
      result.cells.push_back(std::move(stencil_cells[i]));
    }
  }
  result.wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - wall_start)
                      .count();
  return result;
}

std::string tournament_json(const TournamentResult& result) {
  JsonWriter json;
  json.begin_object();
  json.key("config").begin_object();
  json.field("arch", result.options.arch);
  json.field("budget_s", result.options.budget_s);
  json.field("seed", result.options.seed);
  json.field("optimizer_count",
             static_cast<std::uint64_t>(result.options.optimizers.size()));
  json.end_object();

  json.key("stencils").begin_object();
  for (const auto& stencil : result.options.stencils) {
    const auto cells = result.stencil_cells(stencil);
    json.key(stencil).begin_object();
    // Leaderboard order as numeric leaves keyed by optimizer name: the
    // report comparator gates numbers and treats strings as informational,
    // so the order itself must be numbers to gate at 0%.
    json.key("ranks").begin_object();
    for (const auto* cell : cells) {
      json.field(cell->optimizer, static_cast<std::uint64_t>(cell->rank));
    }
    json.end_object();
    json.key("best_ms").begin_object();
    for (const auto* cell : cells) {
      json.field(cell->optimizer, json_ms(cell->best_ms));
    }
    json.end_object();
    json.key("evals").begin_object();
    for (const auto* cell : cells) {
      json.field(cell->optimizer, static_cast<std::uint64_t>(cell->evals));
    }
    json.end_object();
    json.key("virtual_s").begin_object();
    for (const auto* cell : cells) {
      json.field(cell->optimizer, cell->virtual_s);
    }
    json.end_object();
    json.key("leaderboard").begin_array();
    for (const auto* cell : cells) json.value(cell->optimizer);
    json.end_array();
    json.end_object();
  }
  json.end_object();

  json.key("overall").begin_object();
  json.key("mean_rank").begin_object();
  for (const auto& name : result.options.optimizers) {
    json.field(name, result.mean_rank(name));
  }
  json.end_object();
  json.key("wins").begin_object();
  for (const auto& name : result.options.optimizers) {
    json.field(name, static_cast<std::uint64_t>(result.wins(name)));
  }
  json.end_object();
  json.end_object();

  json.field("wall_s", result.wall_s);
  json.end_object();
  return json.str();
}

void print_tournament(const TournamentResult& result, std::ostream& os) {
  TextTable table(
      {"stencil", "rank", "optimizer", "best_ms", "evals", "virtual_s"});
  for (const auto& cell : result.cells) {
    table.add_row({cell.stencil, std::to_string(cell.rank), cell.optimizer,
                   TextTable::fmt(json_ms(cell.best_ms), 4),
                   std::to_string(cell.evals),
                   TextTable::fmt(cell.virtual_s, 2)});
  }
  table.print(os);
  TextTable overall({"optimizer", "mean_rank", "wins"});
  for (const auto& name : result.options.optimizers) {
    overall.add_row({name, TextTable::fmt(result.mean_rank(name), 2),
                     std::to_string(result.wins(name))});
  }
  overall.print(os);
}

}  // namespace cstuner::search
