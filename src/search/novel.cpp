#include "search/novel.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "baselines/subspace.hpp"
#include "common/error.hpp"

namespace cstuner::search {

using space::kParamCount;
using space::ParamId;
using space::Setting;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Every step draws from its own (seed, tag, step)-derived stream; the
/// stream never outlives the step, so no generator state needs serializing.
Rng step_rng(std::uint64_t seed, std::uint64_t tag, std::size_t step) {
  return Rng(hash_combine(hash_combine(seed, tag), step));
}

/// One-parameter move to an adjacent admissible value, repaired.
Setting adjacent_move(const space::SearchSpace& space, Setting s, Rng& rng) {
  const auto pid = static_cast<ParamId>(rng.index(kParamCount));
  const auto& p = space.parameter(pid);
  const std::size_t idx = p.value_index(s.get(pid));
  const std::size_t next = (idx == 0 || rng.bernoulli(0.5))
                               ? std::min(idx + 1, p.cardinality() - 1)
                               : idx - 1;
  s.set(pid, p.values[next]);
  return space.checker().repaired(s);
}

/// Continuous value-index vector -> nearest admissible setting.
Setting vec_to_setting(const space::SearchSpace& space,
                       const std::vector<std::uint32_t>& cards,
                       const std::vector<double>& v) {
  ga::Genome genome(kParamCount);
  for (std::size_t i = 0; i < kParamCount; ++i) {
    const double clamped =
        std::clamp(v[i], 0.0, static_cast<double>(cards[i] - 1));
    genome[i] = static_cast<std::uint32_t>(std::lround(clamped));
  }
  return baselines::genome_to_setting(space, genome);
}

std::vector<double> setting_indices(const space::SearchSpace& space,
                                    const Setting& s) {
  std::vector<double> v(kParamCount);
  for (std::size_t d = 0; d < kParamCount; ++d) {
    const auto& p = space.parameters()[d];
    v[d] = static_cast<double>(p.value_index(s.get(static_cast<ParamId>(d))));
  }
  return v;
}

// --- Serialization helpers: doubles travel as IEEE-754 bit patterns, like
// the checkpoint journal, so state round-trips bit-exactly.

void write_bits(JsonWriter& json, const char* key,
                const std::vector<double>& values) {
  json.key(key).begin_array();
  for (double v : values) json.value(std::bit_cast<std::uint64_t>(v));
  json.end_array();
}

std::vector<double> parse_bits(const JsonValue& value) {
  std::vector<double> out;
  for (const auto& v : value.as_array()) {
    out.push_back(std::bit_cast<double>(v.as_u64()));
  }
  return out;
}

void write_vecs(JsonWriter& json, const char* key,
                const std::vector<std::vector<double>>& vecs) {
  json.key(key).begin_array();
  for (const auto& vec : vecs) {
    json.begin_array();
    for (double v : vec) json.value(std::bit_cast<std::uint64_t>(v));
    json.end_array();
  }
  json.end_array();
}

std::vector<std::vector<double>> parse_vecs(const JsonValue& value) {
  std::vector<std::vector<double>> out;
  for (const auto& vec : value.as_array()) out.push_back(parse_bits(vec));
  return out;
}

void write_settings(JsonWriter& json, const char* key,
                    const std::vector<Setting>& settings) {
  json.key(key).begin_array();
  for (const auto& s : settings) {
    json.begin_array();
    for (std::int64_t v : s.raw()) json.value(v);
    json.end_array();
  }
  json.end_array();
}

Setting parse_setting(const JsonValue& value) {
  const auto& vals = value.as_array();
  CSTUNER_CHECK(vals.size() == kParamCount);
  Setting s;
  for (std::size_t i = 0; i < kParamCount; ++i) {
    s.set(static_cast<ParamId>(i), vals[i].as_i64());
  }
  return s;
}

std::vector<Setting> parse_settings(const JsonValue& value) {
  std::vector<Setting> out;
  for (const auto& s : value.as_array()) out.push_back(parse_setting(s));
  return out;
}

std::size_t parse_steps(const JsonValue& state) {
  return static_cast<std::size_t>(state.at("steps").as_u64());
}

/// Standard normal CDF / PDF, for the expected-improvement score.
double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * 3.14159265358979323846);
}

}  // namespace

// ---------------------------------------------------------------------------
// AnnealOptimizer

namespace {
constexpr double kAnnealT0 = 0.30;     // initial relative-slowdown tolerance
constexpr double kAnnealAlpha = 0.97;  // geometric cooling per step
constexpr std::uint64_t kAnnealMoveTag = 0xA11EA1;
constexpr std::uint64_t kAnnealAcceptTag = 0xACCE97;
}  // namespace

AnnealOptimizer::AnnealOptimizer(std::uint64_t seed) : seed_(seed) {}

void AnnealOptimizer::bind(tuner::Evaluator& evaluator) {
  space_ = &evaluator.space();
}

std::vector<Setting> AnnealOptimizer::propose() {
  Rng rng = step_rng(seed_, kAnnealMoveTag, completed_steps());
  std::vector<Setting> batch;
  batch.reserve(kWalkers);
  if (current_.empty()) {
    for (std::size_t i = 0; i < kWalkers; ++i) {
      batch.push_back(space_->random_valid(rng));
    }
    return batch;
  }
  for (const auto& walker : current_) {
    batch.push_back(adjacent_move(*space_, walker, rng));
  }
  return batch;
}

void AnnealOptimizer::observe(const std::vector<Setting>& batch,
                              const std::vector<tuner::EvalResult>& results) {
  if (current_.empty()) {
    current_ = batch;
    current_times_.resize(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      current_times_[i] = results[i].time_or_inf();
    }
    return;
  }
  Rng rng = step_rng(seed_, kAnnealAcceptTag, completed_steps());
  const double temperature =
      kAnnealT0 *
      std::pow(kAnnealAlpha, static_cast<double>(completed_steps() - 1));
  for (std::size_t i = 0; i < current_.size(); ++i) {
    const double t_new = results[i].time_or_inf();
    const double t_cur = current_times_[i];
    bool accept = t_new < t_cur;
    if (!accept && std::isfinite(t_new) && std::isfinite(t_cur)) {
      // Metropolis on the relative slowdown, so the acceptance scale is
      // stencil-independent.
      const double slowdown = (t_new - t_cur) / t_cur;
      accept = rng.uniform() <
               std::exp(-slowdown / std::max(temperature, 1e-12));
    }
    if (accept) {
      current_[i] = batch[i];
      current_times_[i] = t_new;
    }
  }
}

void AnnealOptimizer::serialize_state(JsonWriter& json) const {
  json.begin_object();
  json.field("optimizer", name());
  json.field("steps", static_cast<std::uint64_t>(completed_steps_));
  write_settings(json, "walkers", current_);
  write_bits(json, "times_bits", current_times_);
  json.end_object();
}

bool AnnealOptimizer::restore_state(const JsonValue& state) {
  current_ = parse_settings(state.at("walkers"));
  current_times_ = parse_bits(state.at("times_bits"));
  CSTUNER_CHECK(current_.size() == current_times_.size());
  completed_steps_ = parse_steps(state);
  return true;
}

// ---------------------------------------------------------------------------
// PsoOptimizer

namespace {
constexpr double kPsoInertia = 0.72;
constexpr double kPsoCognitive = 1.49;
constexpr double kPsoSocial = 1.49;
constexpr std::uint64_t kPsoTag = 0x9507;
}  // namespace

PsoOptimizer::PsoOptimizer(std::uint64_t seed) : seed_(seed) {}

void PsoOptimizer::bind(tuner::Evaluator& evaluator) {
  space_ = &evaluator.space();
  cards_ = baselines::parameter_cardinalities(*space_);
}

std::vector<Setting> PsoOptimizer::propose() {
  Rng rng = step_rng(seed_, kPsoTag, completed_steps());
  std::vector<Setting> batch;
  batch.reserve(kParticles);
  if (positions_.empty()) {
    positions_.resize(kParticles);
    velocities_.assign(kParticles, std::vector<double>(kParamCount, 0.0));
    for (std::size_t i = 0; i < kParticles; ++i) {
      positions_[i] = setting_indices(*space_, space_->random_valid(rng));
      batch.push_back(vec_to_setting(*space_, cards_, positions_[i]));
    }
    return batch;
  }
  for (std::size_t i = 0; i < kParticles; ++i) {
    for (std::size_t d = 0; d < kParamCount; ++d) {
      const double r1 = rng.uniform();
      const double r2 = rng.uniform();
      velocities_[i][d] =
          kPsoInertia * velocities_[i][d] +
          kPsoCognitive * r1 * (pbest_pos_[i][d] - positions_[i][d]) +
          kPsoSocial * r2 * (gbest_pos_[d] - positions_[i][d]);
      positions_[i][d] =
          std::clamp(positions_[i][d] + velocities_[i][d], 0.0,
                     static_cast<double>(cards_[d] - 1));
    }
    batch.push_back(vec_to_setting(*space_, cards_, positions_[i]));
  }
  return batch;
}

void PsoOptimizer::observe(const std::vector<Setting>& batch,
                           const std::vector<tuner::EvalResult>& results) {
  (void)batch;
  if (pbest_pos_.empty()) {
    pbest_pos_ = positions_;
    pbest_times_.resize(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      pbest_times_[i] = results[i].time_or_inf();
    }
    gbest_time_ = kInf;
    for (std::size_t i = 0; i < pbest_times_.size(); ++i) {
      if (pbest_times_[i] < gbest_time_) {
        gbest_time_ = pbest_times_[i];
        gbest_pos_ = pbest_pos_[i];
      }
    }
    // An all-invalid initial swarm still needs a defined attractor.
    if (gbest_pos_.empty()) gbest_pos_ = pbest_pos_.front();
    return;
  }
  for (std::size_t i = 0; i < kParticles; ++i) {
    const double t = results[i].time_or_inf();
    if (t < pbest_times_[i]) {
      pbest_times_[i] = t;
      pbest_pos_[i] = positions_[i];
    }
    if (t < gbest_time_) {
      gbest_time_ = t;
      gbest_pos_ = positions_[i];
    }
  }
}

void PsoOptimizer::serialize_state(JsonWriter& json) const {
  json.begin_object();
  json.field("optimizer", name());
  json.field("steps", static_cast<std::uint64_t>(completed_steps_));
  write_vecs(json, "positions", positions_);
  write_vecs(json, "velocities", velocities_);
  write_vecs(json, "pbest_pos", pbest_pos_);
  write_bits(json, "pbest_times_bits", pbest_times_);
  write_bits(json, "gbest_pos", gbest_pos_);
  json.field("gbest_time_bits", std::bit_cast<std::uint64_t>(gbest_time_));
  json.end_object();
}

bool PsoOptimizer::restore_state(const JsonValue& state) {
  positions_ = parse_vecs(state.at("positions"));
  velocities_ = parse_vecs(state.at("velocities"));
  pbest_pos_ = parse_vecs(state.at("pbest_pos"));
  pbest_times_ = parse_bits(state.at("pbest_times_bits"));
  gbest_pos_ = parse_bits(state.at("gbest_pos"));
  gbest_time_ = std::bit_cast<double>(state.at("gbest_time_bits").as_u64());
  completed_steps_ = parse_steps(state);
  return true;
}

// ---------------------------------------------------------------------------
// NativeDeOptimizer

namespace {
constexpr double kNativeDeF = 0.7;    // differential weight
constexpr double kNativeDeCr = 0.85;  // crossover probability
constexpr std::uint64_t kNativeDeTag = 0xDE01;
}  // namespace

NativeDeOptimizer::NativeDeOptimizer(std::uint64_t seed) : seed_(seed) {}

void NativeDeOptimizer::bind(tuner::Evaluator& evaluator) {
  space_ = &evaluator.space();
  cards_ = baselines::parameter_cardinalities(*space_);
}

std::vector<Setting> NativeDeOptimizer::propose() {
  Rng rng = step_rng(seed_, kNativeDeTag, completed_steps());
  std::vector<Setting> batch;
  batch.reserve(kPopulation);
  if (positions_.empty()) {
    positions_.resize(kPopulation);
    for (std::size_t i = 0; i < kPopulation; ++i) {
      positions_[i] = setting_indices(*space_, space_->random_valid(rng));
      batch.push_back(vec_to_setting(*space_, cards_, positions_[i]));
    }
    return batch;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < times_.size(); ++i) {
    if (times_[i] < times_[best]) best = i;
  }
  trials_.assign(kPopulation, {});
  for (std::size_t i = 0; i < kPopulation; ++i) {
    // DE/best/1/bin: perturb the incumbent with one random difference pair.
    const std::size_t a = rng.index(kPopulation);
    const std::size_t b = rng.index(kPopulation);
    trials_[i] = positions_[i];
    const std::size_t forced = rng.index(kParamCount);
    for (std::size_t d = 0; d < kParamCount; ++d) {
      if (d == forced || rng.bernoulli(kNativeDeCr)) {
        trials_[i][d] = positions_[best][d] +
                        kNativeDeF * (positions_[a][d] - positions_[b][d]);
      }
    }
    batch.push_back(vec_to_setting(*space_, cards_, trials_[i]));
  }
  return batch;
}

void NativeDeOptimizer::observe(const std::vector<Setting>& batch,
                                const std::vector<tuner::EvalResult>& results) {
  (void)batch;
  if (times_.empty()) {
    times_.resize(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      times_[i] = results[i].time_or_inf();
    }
    return;
  }
  for (std::size_t i = 0; i < kPopulation; ++i) {
    const double t = results[i].time_or_inf();
    if (t < times_[i]) {
      positions_[i] = std::move(trials_[i]);
      times_[i] = t;
    }
  }
}

void NativeDeOptimizer::serialize_state(JsonWriter& json) const {
  json.begin_object();
  json.field("optimizer", name());
  json.field("steps", static_cast<std::uint64_t>(completed_steps_));
  write_vecs(json, "positions", positions_);
  write_bits(json, "times_bits", times_);
  json.end_object();
}

bool NativeDeOptimizer::restore_state(const JsonValue& state) {
  positions_ = parse_vecs(state.at("positions"));
  times_ = parse_bits(state.at("times_bits"));
  completed_steps_ = parse_steps(state);
  return true;
}

// ---------------------------------------------------------------------------
// SurrogateOptimizer

namespace {
constexpr std::uint64_t kSurrogatePoolTag = 0x5A6A;
constexpr std::uint64_t kSurrogateFitTag = 0xF17;
}  // namespace

SurrogateOptimizer::SurrogateOptimizer(std::uint64_t seed) : seed_(seed) {}

void SurrogateOptimizer::bind(tuner::Evaluator& evaluator) {
  space_ = &evaluator.space();
}

std::vector<Setting> SurrogateOptimizer::propose() {
  Rng rng = step_rng(seed_, kSurrogatePoolTag, completed_steps());
  if (history_.size() < kMinHistory) {
    // Bootstrap: the forest needs a few finite measurements first.
    std::vector<Setting> batch;
    batch.reserve(kInitBatch);
    for (std::size_t i = 0; i < kInitBatch; ++i) {
      batch.push_back(space_->random_valid(rng));
    }
    return batch;
  }

  // Fresh forest over the whole history, log-time target (times span
  // orders of magnitude; log keeps the squared-error splits honest).
  const std::size_t n = history_.size();
  std::vector<double> features;
  features.reserve(n * kParamCount);
  std::vector<double> y(n);
  double best_time = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    const auto row = space::SearchSpace::to_feature_row(history_[i].first);
    features.insert(features.end(), row.begin(), row.end());
    y[i] = std::log(std::max(history_[i].second, 1e-9));
    best_time = std::min(best_time, history_[i].second);
  }
  ml::ForestConfig config;
  config.n_trees = 16;
  ml::RandomForest forest(ml::TreeTask::kRegression, config);
  ml::TableView table{features, n, kParamCount};
  Rng fit_rng = step_rng(seed_, kSurrogateFitTag, completed_steps());
  forest.fit(table, y, fit_rng);
  const double y_best = std::log(std::max(best_time, 1e-9));

  // Elite incumbents for the exploitation half of the candidate pool.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                   std::size_t b) {
    return history_[a].second < history_[b].second;
  });
  const std::size_t n_elites = std::min(kElites, n);

  std::vector<Setting> pool;
  pool.reserve(kPool);
  std::unordered_set<std::uint64_t> pool_seen;
  for (std::size_t j = 0; j < kPool; ++j) {
    Setting candidate;
    if (j % 2 == 0) {
      candidate = space_->random_valid(rng);
    } else {
      candidate = history_[order[rng.index(n_elites)]].first;
      const std::size_t moves = 1 + rng.index(2);
      for (std::size_t m = 0; m < moves; ++m) {
        candidate = adjacent_move(*space_, candidate, rng);
      }
    }
    const std::uint64_t key = candidate.hash();
    if (seen_.count(key) != 0 || !pool_seen.insert(key).second) continue;
    pool.push_back(candidate);
  }
  if (pool.empty()) {
    // Everything deduplicated away (tiny spaces): keep the run alive with
    // plain random sampling.
    std::vector<Setting> batch;
    batch.reserve(kBatch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      batch.push_back(space_->random_valid(rng));
    }
    return batch;
  }

  // Expected improvement below the incumbent, with the tree spread as the
  // predictive uncertainty.
  std::vector<double> ei(pool.size());
  for (std::size_t i = 0; i < pool.size(); ++i) {
    const auto preds =
        forest.tree_predictions(space::SearchSpace::to_feature_row(pool[i]));
    double mu = 0.0;
    for (double p : preds) mu += p;
    mu /= static_cast<double>(preds.size());
    double var = 0.0;
    for (double p : preds) var += (p - mu) * (p - mu);
    var /= static_cast<double>(preds.size());
    const double sd = std::sqrt(var) + 1e-9;
    const double z = (y_best - mu) / sd;
    ei[i] = (y_best - mu) * normal_cdf(z) + sd * normal_pdf(z);
  }
  std::vector<std::size_t> ranked(pool.size());
  for (std::size_t i = 0; i < ranked.size(); ++i) ranked[i] = i;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](std::size_t a, std::size_t b) { return ei[a] > ei[b]; });
  std::vector<Setting> batch;
  const std::size_t take = std::min(kBatch, pool.size());
  batch.reserve(take);
  for (std::size_t i = 0; i < take; ++i) batch.push_back(pool[ranked[i]]);
  return batch;
}

void SurrogateOptimizer::observe(const std::vector<Setting>& batch,
                                 const std::vector<tuner::EvalResult>& results) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double t = results[i].time_or_inf();
    if (!std::isfinite(t) || history_.size() >= kHistoryCap) continue;
    if (seen_.insert(batch[i].hash()).second) {
      history_.emplace_back(batch[i], t);
    }
  }
}

void SurrogateOptimizer::serialize_state(JsonWriter& json) const {
  json.begin_object();
  json.field("optimizer", name());
  json.field("steps", static_cast<std::uint64_t>(completed_steps_));
  json.key("history").begin_array();
  for (const auto& [setting, time_ms] : history_) {
    json.begin_object();
    json.key("values").begin_array();
    for (std::int64_t v : setting.raw()) json.value(v);
    json.end_array();
    json.field("time_bits", std::bit_cast<std::uint64_t>(time_ms));
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

bool SurrogateOptimizer::restore_state(const JsonValue& state) {
  history_.clear();
  seen_.clear();
  for (const auto& entry : state.at("history").as_array()) {
    const Setting setting = parse_setting(entry.at("values"));
    const double t = std::bit_cast<double>(entry.at("time_bits").as_u64());
    seen_.insert(setting.hash());
    history_.emplace_back(setting, t);
  }
  completed_steps_ = parse_steps(state);
  return true;
}

}  // namespace cstuner::search
