#pragma once
// The natively-checkpointable optimizers of the zoo: simulated annealing,
// particle swarm, differential evolution (a budget-driven variant, unlike
// the stale-bounded OpenTuner port) and a surrogate-guided searcher built
// on the src/ml random forest. All four draw every step from an RNG derived
// from (seed, step), so their whole mutable state is POD — populations plus
// the step counter — and serialize_state()/restore_state() round-trip it
// exactly: a restored instance proposes the bit-identical continuation
// (tests/test_optimizer_zoo.cpp, SnapshotResume*).

#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "ml/random_forest.hpp"
#include "search/optimizer.hpp"

namespace cstuner::search {

/// Metropolis annealing over a population of independent walkers. Each step
/// moves every walker to an adjacent-value neighbour (one parameter, one
/// index step, like the hill climber's moves) and accepts uphill moves with
/// probability exp(-relative-slowdown / T), T decaying geometrically.
class AnnealOptimizer : public Optimizer {
 public:
  explicit AnnealOptimizer(std::uint64_t seed);

  std::string name() const override { return "anneal"; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  void serialize_state(JsonWriter& json) const override;
  bool restore_state(const JsonValue& state) override;

  static constexpr std::size_t kWalkers = 8;

 private:
  std::uint64_t seed_;
  const space::SearchSpace* space_ = nullptr;
  std::vector<space::Setting> current_;
  std::vector<double> current_times_;
};

/// Particle swarm over the continuous value-index space (positions round to
/// the nearest admissible value for evaluation; constraint-invalid rounded
/// positions simply score infinity, which the evaluator reports for free).
class PsoOptimizer : public Optimizer {
 public:
  explicit PsoOptimizer(std::uint64_t seed);

  std::string name() const override { return "pso"; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  void serialize_state(JsonWriter& json) const override;
  bool restore_state(const JsonValue& state) override;

  static constexpr std::size_t kParticles = 16;

 private:
  std::uint64_t seed_;
  const space::SearchSpace* space_ = nullptr;
  std::vector<std::uint32_t> cards_;
  std::vector<std::vector<double>> positions_;
  std::vector<std::vector<double>> velocities_;
  std::vector<std::vector<double>> pbest_pos_;
  std::vector<double> pbest_times_;
  std::vector<double> gbest_pos_;
  double gbest_time_ = 0.0;
};

/// DE/best/1/bin over the value-index space. Runs until the budget ends —
/// the cache makes replayed settings free, so unlike the OpenTuner port it
/// never declares itself exhausted.
class NativeDeOptimizer : public Optimizer {
 public:
  explicit NativeDeOptimizer(std::uint64_t seed);

  std::string name() const override { return "de"; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  void serialize_state(JsonWriter& json) const override;
  bool restore_state(const JsonValue& state) override;

  static constexpr std::size_t kPopulation = 24;

 private:
  std::uint64_t seed_;
  const space::SearchSpace* space_ = nullptr;
  std::vector<std::uint32_t> cards_;
  std::vector<std::vector<double>> positions_;
  std::vector<double> times_;
  std::vector<std::vector<double>> trials_;
};

/// Surrogate-guided search: fits a fresh random-forest regressor over the
/// measured history each step (log-time target), scores a candidate pool —
/// half uniform random, half adjacent-mutations of the elite — by expected
/// improvement over the incumbent, and proposes the top scorers. The
/// history (finite measurements only, capped) is the whole model state.
class SurrogateOptimizer : public Optimizer {
 public:
  explicit SurrogateOptimizer(std::uint64_t seed);

  std::string name() const override { return "surrogate"; }
  void bind(tuner::Evaluator& evaluator) override;
  std::vector<space::Setting> propose() override;
  void observe(const std::vector<space::Setting>& batch,
               const std::vector<tuner::EvalResult>& results) override;
  void serialize_state(JsonWriter& json) const override;
  bool restore_state(const JsonValue& state) override;

  static constexpr std::size_t kInitBatch = 32;
  static constexpr std::size_t kBatch = 16;
  static constexpr std::size_t kPool = 192;
  static constexpr std::size_t kElites = 8;
  static constexpr std::size_t kMinHistory = 16;
  static constexpr std::size_t kHistoryCap = 512;

 private:
  std::uint64_t seed_;
  const space::SearchSpace* space_ = nullptr;
  /// Finite measurements only; the dedup keys derive purely from this, so
  /// restore_state rebuilds an identical view.
  std::vector<std::pair<space::Setting, double>> history_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace cstuner::search
