#pragma once
// MetaTuner: picks an optimizer from stencil features (docs/optimizers.md,
// "Automatic optimizer selection"). A small classification random forest
// (src/ml) is trained at construction on an embedded table of per-stencil
// tournament winners — the committed bench/baseline_tournament.json
// leaderboard — so `tune --optimizer=auto` resolves to a concrete
// registered optimizer deterministically, including for stencils the
// tournament never raced (the forest generalizes over the features).

#include <string>
#include <vector>

#include "ml/random_forest.hpp"
#include "stencil/stencils.hpp"

namespace cstuner::search {

class MetaTuner {
 public:
  /// Trains the selection forest on the embedded winner table (fixed seed;
  /// construction is deterministic).
  MetaTuner();

  /// Feature vector the forest classifies on: radius/flops/footprint shape
  /// of the stencil plus its grid extents.
  static std::vector<double> features_of(const stencil::StencilSpec& spec);

  /// The chosen optimizer for `spec`. Always a registered name.
  std::string pick(const stencil::StencilSpec& spec) const;

 private:
  std::vector<std::string> labels_;
  ml::RandomForest forest_;
};

}  // namespace cstuner::search
