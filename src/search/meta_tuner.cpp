#include "search/meta_tuner.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "search/registry.hpp"

namespace cstuner::search {

namespace {

/// One training row: the stencil it came from (features are derived at
/// construction so the table can never drift from features_of) and the
/// optimizer that won its tournament leaderboard.
struct TrainingRow {
  const char* stencil;
  const char* winner;
};

/// Per-stencil winners of the full-suite local tournament (budget 10
/// virtual seconds, seed 4242, every registered optimizer — the same
/// profile bench_tournament runs). Regenerate with
/// `cstuner tournament --all` after changing any optimizer.
constexpr TrainingRow kTrainingRows[] = {
    {"j3d7pt", "opentuner-ga"}, {"j3d27pt", "surrogate"},
    {"helmholtz", "opentuner-ga"}, {"cheby", "artemis"},
    {"hypterm", "artemis"},     {"addsgd4", "artemis"},
    {"addsgd6", "artemis"},     {"rhs4center", "artemis"},
};

constexpr std::uint64_t kMetaTunerSeed = 0x4D455441;  // "META"

}  // namespace

std::vector<double> MetaTuner::features_of(const stencil::StencilSpec& spec) {
  return {
      static_cast<double>(spec.order),
      static_cast<double>(spec.flops),
      static_cast<double>(spec.io_arrays),
      static_cast<double>(spec.n_inputs),
      static_cast<double>(spec.n_outputs),
      static_cast<double>(spec.taps.size()),
      static_cast<double>(spec.shape == stencil::Shape::kStar ? 0 : 1),
      std::log2(static_cast<double>(std::max<std::int64_t>(1, spec.points()))),
      static_cast<double>(spec.grid[2] > 1 ? 3 : (spec.grid[1] > 1 ? 2 : 1)),
      spec.arithmetic_intensity(),
  };
}

MetaTuner::MetaTuner()
    : forest_(ml::TreeTask::kClassification, [] {
        ml::ForestConfig config;
        config.n_trees = 16;
        // Tiny table: let every tree see (almost) the whole of it.
        config.tree.max_depth = 6;
        config.tree.min_samples_leaf = 1;
        config.tree.min_samples_split = 2;
        return config;
      }()) {
  std::vector<double> features;
  std::vector<double> targets;
  std::size_t n_features = 0;
  for (const auto& row : kTrainingRows) {
    const auto feats = features_of(stencil::make_stencil(row.stencil));
    n_features = feats.size();
    features.insert(features.end(), feats.begin(), feats.end());
    // Labels are indices into labels_, deduplicated in first-seen order.
    std::size_t label = labels_.size();
    for (std::size_t i = 0; i < labels_.size(); ++i) {
      if (labels_[i] == row.winner) {
        label = i;
        break;
      }
    }
    if (label == labels_.size()) labels_.emplace_back(row.winner);
    targets.push_back(static_cast<double>(label));
  }
  CSTUNER_CHECK(!labels_.empty());
  ml::TableView table{features, targets.size(), n_features};
  Rng rng(kMetaTunerSeed);
  forest_.fit(table, targets, rng);
}

std::string MetaTuner::pick(const stencil::StencilSpec& spec) const {
  const double label = forest_.predict(features_of(spec));
  auto index = static_cast<std::size_t>(label);
  if (index >= labels_.size()) index = 0;
  const std::string& name = labels_[index];
  // The embedded table could name an optimizer a downstream build removed
  // from the registry; never hand back an unmakeable name.
  if (optimizer_registry().contains(name)) return name;
  const auto names = optimizer_registry().names();
  if (names.empty()) {
    throw UsageError("no optimizers registered (available: none)");
  }
  return names.front();
}

}  // namespace cstuner::search
