#include "search/ported.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "ga/breeding.hpp"
#include "tuner/dataset.hpp"

namespace cstuner::search {

using baselines::apply_combo;
using baselines::enumerate_combos;
using baselines::fitness_of;
using baselines::genome_to_setting;
using baselines::parameter_cardinalities;
using baselines::setting_to_genome;
using space::kParamCount;
using space::ParamId;
using space::Setting;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

// ---------------------------------------------------------------------------
// IslandGaOptimizer

IslandGaOptimizer::IslandGaOptimizer(std::string name, ga::GaOptions ga,
                                     std::uint64_t seed)
    : name_(std::move(name)), ga_(ga), seed_(seed) {
  CSTUNER_CHECK(ga_.sub_populations >= 1);
  CSTUNER_CHECK(ga_.population_size >= 2);
}

void IslandGaOptimizer::bind(tuner::Evaluator& evaluator) {
  space_ = &evaluator.space();
  pruner_.emplace(*space_);
  cards_ = parameter_cardinalities(*space_);
  islands_.resize(static_cast<std::size_t>(ga_.sub_populations));
  for (std::size_t r = 0; r < islands_.size(); ++r) {
    // The concurrent IslandGa's per-rank stream, bit for bit.
    islands_[r].rng = Rng(hash_combine(seed_, r + 101));
  }
  pending_.resize(islands_.size());
  slot_index_.resize(islands_.size());
}

void IslandGaOptimizer::encode_island(std::size_t r,
                                      std::vector<Setting>& batch) {
  std::vector<Setting> candidates;
  candidates.reserve(pending_[r].size());
  for (const auto& genome : pending_[r]) {
    candidates.push_back(genome_to_setting(*space_, genome));
  }
  const auto keep = pruner_->filter(candidates);
  slot_index_[r].assign(candidates.size(), -1);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (keep[i]) {
      slot_index_[r][i] = static_cast<std::ptrdiff_t>(batch.size());
      batch.push_back(candidates[i]);
    }
  }
}

std::vector<Setting> IslandGaOptimizer::propose() {
  std::vector<Setting> batch;
  if (!initialized_) {
    // Initial populations, in rank order, from each island's own stream.
    for (std::size_t r = 0; r < islands_.size(); ++r) {
      auto& island = islands_[r];
      pending_[r].clear();
      pending_[r].reserve(static_cast<std::size_t>(ga_.population_size));
      for (int i = 0; i < ga_.population_size; ++i) {
        pending_[r].push_back(
            setting_to_genome(*space_, space_->random_valid(island.rng)));
      }
      encode_island(r, batch);
    }
    return batch;
  }
  if (gens_done_ >= ga_.max_generations) return {};
  for (std::size_t r = 0; r < islands_.size(); ++r) {
    auto& island = islands_[r];
    pending_[r] = ga::breed_generation(island.genomes, island.fitnesses,
                                       cards_, ga_.crossover_rate,
                                       ga_.mutation_rate, island.rng);
    encode_island(r, batch);
  }
  return batch;
}

void IslandGaOptimizer::observe(const std::vector<Setting>& batch,
                                const std::vector<tuner::EvalResult>& results) {
  (void)batch;
  // Per-slot fitness: measured, or the penalty for pruned-out genomes.
  std::vector<std::vector<double>> fits(islands_.size());
  for (std::size_t r = 0; r < islands_.size(); ++r) {
    fits[r].resize(pending_[r].size());
    for (std::size_t i = 0; i < pending_[r].size(); ++i) {
      const std::ptrdiff_t at = slot_index_[r][i];
      fits[r][i] = fitness_of(
          at >= 0 ? results[static_cast<std::size_t>(at)].time_or_inf()
                  : kInf);
    }
  }
  if (!initialized_) {
    for (std::size_t r = 0; r < islands_.size(); ++r) {
      islands_[r].genomes = std::move(pending_[r]);
      islands_[r].fitnesses = std::move(fits[r]);
    }
    initialized_ = true;
    mark_ = false;
    return;
  }
  auto best_of = [](const std::vector<double>& f) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < f.size(); ++i) {
      if (f[i] > f[best]) best = i;
    }
    return best;
  };
  auto worst_of = [](const std::vector<double>& f) {
    std::size_t worst = 0;
    for (std::size_t i = 1; i < f.size(); ++i) {
      if (f[i] < f[worst]) worst = i;
    }
    return worst;
  };
  // Elitism per island: the best parent survives over the worst child.
  for (std::size_t r = 0; r < islands_.size(); ++r) {
    auto& island = islands_[r];
    const std::size_t elite = best_of(island.fitnesses);
    const std::size_t worst_child = worst_of(fits[r]);
    if (island.fitnesses[elite] > fits[r][worst_child]) {
      pending_[r][worst_child] = island.genomes[elite];
      fits[r][worst_child] = island.fitnesses[elite];
    }
    island.genomes = std::move(pending_[r]);
    island.fitnesses = std::move(fits[r]);
  }
  // Ring migration. Two phases, exactly like the concurrent version, where
  // every island computes its outgoing elites from its post-elitism
  // population before any island applies what it received.
  const std::size_t gen = gens_done_ + 1;
  if (islands_.size() > 1 &&
      gen % static_cast<std::size_t>(ga_.migration_interval) == 0) {
    struct Migrant {
      ga::Genome genome;
      double fitness;
    };
    const auto m = static_cast<std::size_t>(
        std::min<int>(ga_.migrants, ga_.population_size));
    std::vector<std::vector<Migrant>> outgoing(islands_.size());
    for (std::size_t r = 0; r < islands_.size(); ++r) {
      const auto& island = islands_[r];
      std::vector<std::size_t> order(island.genomes.size());
      for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
      // The concurrent version sorts Individual structs with std::sort and
      // a strict fitness comparator; sorting indices with the same
      // comparator over the same values reproduces its (deterministic,
      // same-binary) permutation.
      std::sort(order.begin(), order.end(),
                [&](std::size_t a, std::size_t b) {
                  return island.fitnesses[a] > island.fitnesses[b];
                });
      outgoing[r].reserve(m);
      for (std::size_t i = 0; i < m; ++i) {
        outgoing[r].push_back(
            {island.genomes[order[i]], island.fitnesses[order[i]]});
      }
    }
    for (std::size_t r = 0; r < islands_.size(); ++r) {
      auto& island = islands_[r];
      const std::size_t left = (r + islands_.size() - 1) % islands_.size();
      for (const auto& migrant : outgoing[left]) {
        const std::size_t worst = worst_of(island.fitnesses);
        if (migrant.fitness > island.fitnesses[worst]) {
          island.genomes[worst] = migrant.genome;
          island.fitnesses[worst] = migrant.fitness;
        }
      }
    }
  }
  ++gens_done_;
  mark_ = true;
}

// ---------------------------------------------------------------------------
// HillClimbOptimizer

HillClimbOptimizer::HillClimbOptimizer(ga::GaOptions ga, std::uint64_t seed)
    : seed_(seed),
      moves_per_iteration_(ga.sub_populations * ga.population_size) {
  CSTUNER_CHECK(moves_per_iteration_ >= 1);
}

void HillClimbOptimizer::bind(tuner::Evaluator& evaluator) {
  space_ = &evaluator.space();
  rng_ = Rng(seed_);
}

std::vector<Setting> HillClimbOptimizer::propose() {
  if (phase_ == Phase::kStart) {
    current_ = space_->random_valid(rng_);
    return {current_};
  }
  if (phase_ == Phase::kRestart) return {current_};
  std::vector<Setting> neighbors;
  neighbors.reserve(static_cast<std::size_t>(moves_per_iteration_));
  for (int m = 0; m < moves_per_iteration_; ++m) {
    Setting neighbor = current_;
    const auto pid = static_cast<ParamId>(rng_.index(kParamCount));
    const auto& p = space_->parameter(pid);
    const std::size_t idx = p.value_index(neighbor.get(pid));
    // Note the short-circuit: no coin is spent when idx == 0, exactly as
    // in the original.
    const std::size_t next = (idx == 0 || rng_.bernoulli(0.5))
                                 ? std::min(idx + 1, p.cardinality() - 1)
                                 : idx - 1;
    neighbor.set(pid, p.values[next]);
    neighbors.push_back(space_->checker().repaired(neighbor));
  }
  return neighbors;
}

void HillClimbOptimizer::observe(const std::vector<Setting>& batch,
                                 const std::vector<tuner::EvalResult>& results) {
  if (phase_ != Phase::kMoves) {
    // Start or restart point measured; the move loop may now be stopped.
    current_time_ = results[0].time_or_inf();
    phase_ = Phase::kMoves;
    mark_ = false;
    allow_stop_ = true;
    return;
  }
  Setting best_neighbor = current_;
  double best_time = current_time_;
  for (std::size_t m = 0; m < results.size(); ++m) {
    if (results[m].time_or_inf() < best_time) {
      best_time = results[m].time_or_inf();
      best_neighbor = batch[m];
    }
  }
  mark_ = true;
  if (best_time < current_time_) {
    current_ = best_neighbor;
    current_time_ = best_time;
    allow_stop_ = true;
  } else {
    // Local optimum: random restart. The original measures the restart
    // point before its next stop consult, so stop checks stay off until
    // the restart's observe.
    current_ = space_->random_valid(rng_);
    phase_ = Phase::kRestart;
    allow_stop_ = false;
  }
}

// ---------------------------------------------------------------------------
// OpenTunerDeOptimizer

OpenTunerDeOptimizer::OpenTunerDeOptimizer(ga::GaOptions ga,
                                           std::uint64_t seed)
    : seed_(seed),
      pop_size_(static_cast<std::size_t>(ga.sub_populations *
                                         ga.population_size)) {
  CSTUNER_CHECK(pop_size_ >= 4);
}

namespace {

constexpr double kDeF = 0.5;   // differential weight
constexpr double kDeCr = 0.9;  // crossover probability

Setting de_vec_to_setting(const space::SearchSpace& space,
                          const std::vector<std::uint32_t>& cards,
                          const std::vector<double>& v) {
  ga::Genome genome(kParamCount);
  for (std::size_t i = 0; i < kParamCount; ++i) {
    const double clamped =
        std::clamp(v[i], 0.0, static_cast<double>(cards[i] - 1));
    genome[i] = static_cast<std::uint32_t>(std::lround(clamped));
  }
  return genome_to_setting(space, genome);
}

}  // namespace

void OpenTunerDeOptimizer::bind(tuner::Evaluator& evaluator) {
  space_ = &evaluator.space();
  evaluator_ = &evaluator;
  rng_ = Rng(seed_);
  pruner_.emplace(*space_);
  cards_ = parameter_cardinalities(*space_);
  population_.resize(pop_size_);
  times_.assign(pop_size_, kInf);
}

std::vector<Setting> OpenTunerDeOptimizer::propose() {
  if (!seeded_) {
    std::vector<Setting> seeds;
    seeds.reserve(pop_size_);
    for (std::size_t i = 0; i < pop_size_; ++i) {
      const Setting seed_setting = space_->random_valid(rng_);
      population_[i].resize(kParamCount);
      for (std::size_t d = 0; d < kParamCount; ++d) {
        const auto& p = space_->parameters()[d];
        population_[i][d] = static_cast<double>(
            p.value_index(seed_setting.get(static_cast<ParamId>(d))));
      }
      seeds.push_back(de_vec_to_setting(*space_, cards_, population_[i]));
    }
    return seeds;
  }
  // The original also exhausts when the population goes stale: further
  // generations would only replay cached evaluations.
  while (stale_generations_ < 50) {
    evals_before_ = evaluator_->unique_evaluations();
    trials_.assign(pop_size_, {});
    std::vector<Setting> trial_settings;
    trial_settings.reserve(pop_size_);
    for (std::size_t i = 0; i < pop_size_; ++i) {
      // DE/rand/1/bin mutant, with the original's exact draw order (the
      // forced dimension spends no coin).
      std::size_t a = rng_.index(pop_size_), b = rng_.index(pop_size_),
                  c = rng_.index(pop_size_);
      trials_[i] = population_[i];
      const std::size_t forced = rng_.index(kParamCount);
      for (std::size_t d = 0; d < kParamCount; ++d) {
        if (d == forced || rng_.bernoulli(kDeCr)) {
          trials_[i][d] = population_[a][d] +
                          kDeF * (population_[b][d] - population_[c][d]);
        }
      }
      trial_settings.push_back(de_vec_to_setting(*space_, cards_, trials_[i]));
    }
    const auto keep = pruner_->filter(trial_settings);
    std::vector<Setting> kept;
    kept_pos_.clear();
    kept.reserve(trial_settings.size());
    for (std::size_t i = 0; i < trial_settings.size(); ++i) {
      if (keep[i]) {
        kept.push_back(trial_settings[i]);
        kept_pos_.push_back(i);
      }
    }
    if (!kept.empty()) return kept;
    // Every trial pruned: the original would run an empty batch, select
    // nothing, mark the iteration and count the generation stale. Settle
    // that here (an empty propose means "exhausted" to the driver).
    evaluator_->mark_iteration();
    ++stale_generations_;
  }
  return {};
}

void OpenTunerDeOptimizer::observe(const std::vector<Setting>& batch,
                                   const std::vector<tuner::EvalResult>& results) {
  (void)batch;
  if (!seeded_) {
    times_.resize(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      times_[i] = results[i].time_or_inf();
    }
    seeded_ = true;
    mark_ = true;
    allow_stop_ = true;
    return;
  }
  std::vector<double> trial_times(pop_size_, kInf);
  for (std::size_t j = 0; j < results.size(); ++j) {
    trial_times[kept_pos_[j]] = results[j].time_or_inf();
  }
  for (std::size_t i = 0; i < pop_size_; ++i) {
    if (trial_times[i] < times_[i]) {
      population_[i] = std::move(trials_[i]);
      times_[i] = trial_times[i];
    }
  }
  mark_ = true;
  // Stale accounting runs after the driver's mark; marking does not touch
  // the unique-evaluation count, so reading it here matches the original.
  stale_generations_ =
      (evaluator_->unique_evaluations() == evals_before_)
          ? stale_generations_ + 1
          : 0;
}

// ---------------------------------------------------------------------------
// GarveyOptimizer

GarveyOptimizer::GarveyOptimizer(baselines::GarveyOptions options)
    : options_(options) {}

void GarveyOptimizer::bind(tuner::Evaluator& evaluator) {
  using namespace space;
  space_ = &evaluator.space();
  rng_ = Rng(options_.seed);

  // Offline stages, verbatim from baselines::Garvey::tune: dataset, forest,
  // memory-flag prediction. The dataset measures through the simulator
  // directly, so none of it charges the evaluator's clock — bind() keeps
  // the "no evaluations" contract.
  const tuner::PerfDataset dataset = tuner::collect_dataset(
      *space_, evaluator.simulator(), options_.dataset_size, rng_,
      evaluator.thread_pool());
  std::vector<double> features;
  features.reserve(dataset.size() * kParamCount);
  for (const auto& s : dataset.settings) {
    const auto row = SearchSpace::to_feature_row(s);
    features.insert(features.end(), row.begin(), row.end());
  }
  ml::TableView table{features, dataset.size(), kParamCount};
  std::vector<double> log_times(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    log_times[i] = std::log(std::max(dataset.times_ms[i], 1e-9));
  }
  ml::RandomForest forest(ml::TreeTask::kRegression, options_.forest);
  forest.fit(table, log_times, rng_);

  std::pair<std::int64_t, std::int64_t> chosen_memory{kOn, kOn};
  double best_pred = kInf;
  for (std::int64_t sh : {kOff, kOn}) {
    for (std::int64_t co : {kOff, kOn}) {
      double sum = 0.0;
      for (const auto& s : dataset.settings) {
        Setting probe = s;
        probe.set(kUseShared, sh);
        probe.set(kUseConstant, co);
        sum += forest.predict(SearchSpace::to_feature_row(probe));
      }
      if (sum < best_pred) {
        best_pred = sum;
        chosen_memory = {sh, co};
      }
    }
  }

  groups_ = {
      {kTBx, kUFx, kCMx, kBMx},
      {kTBy, kUFy, kCMy, kBMy},
      {kTBz, kUFz, kCMz, kBMz},
      {kUseStreaming, kSD, kSB},
      {kUseRetiming, kUsePrefetching},
  };
  base_ = Setting();
  base_.set(kTBx, 32);
  base_.set(kUseShared, chosen_memory.first);
  base_.set(kUseConstant, chosen_memory.second);
  base_ = space_->checker().repaired(base_);
}

std::vector<Setting> GarveyOptimizer::propose() {
  if (!base_proposed_) {
    base_proposed_ = true;
    return {base_};
  }
  while (group_idx_ < groups_.size()) {
    const auto& group = groups_[group_idx_];
    if (!combos_ready_) {
      combos_ = enumerate_combos(*space_, group, options_.max_group_combos,
                                 rng_);
      rng_.shuffle(combos_);
      const auto keep = std::max<std::size_t>(
          1, static_cast<std::size_t>(options_.sampling_ratio *
                                      static_cast<double>(combos_.size())));
      combos_.resize(std::min(combos_.size(), keep));
      cursor_ = 0;
      best_combo_.clear();
      best_time_ = kInf;
      combos_ready_ = true;
    }
    if (cursor_ >= combos_.size()) {
      // Group swept: the best finite combo folds into the base setting.
      if (!best_combo_.empty() && std::isfinite(best_time_)) {
        base_ = apply_combo(*space_, group, best_combo_, base_);
      }
      ++group_idx_;
      combos_ready_ = false;
      continue;
    }
    const std::size_t chunk_end = std::min(
        cursor_ + static_cast<std::size_t>(options_.evals_per_iteration),
        combos_.size());
    std::vector<Setting> candidates;
    candidates.reserve(chunk_end - cursor_);
    for (std::size_t k = cursor_; k < chunk_end; ++k) {
      candidates.push_back(apply_combo(*space_, group, combos_[k], base_));
    }
    chunk_start_ = cursor_;
    cursor_ = chunk_end;
    return candidates;
  }
  return {};
}

void GarveyOptimizer::observe(const std::vector<Setting>& batch,
                              const std::vector<tuner::EvalResult>& results) {
  (void)batch;
  if (chunk_start_ == 0 && group_idx_ == 0 && !combos_ready_) {
    // The base measurement; the original neither marks nor stops on it.
    mark_ = false;
    allow_stop_ = true;
    return;
  }
  for (std::size_t k = 0; k < results.size(); ++k) {
    if (results[k].time_or_inf() < best_time_) {
      best_time_ = results[k].time_or_inf();
      best_combo_ = combos_[chunk_start_ + k];
    }
  }
  mark_ = true;
  allow_stop_ = true;
}

// ---------------------------------------------------------------------------
// ArtemisOptimizer

ArtemisOptimizer::ArtemisOptimizer(baselines::ArtemisOptions options)
    : options_(options) {
  CSTUNER_CHECK(options_.survivors >= 1);
}

void ArtemisOptimizer::bind(tuner::Evaluator& evaluator) {
  using namespace space;
  space_ = &evaluator.space();
  rng_ = Rng(options_.seed);
  stages_ = {
      {kTBx, kTBy, kTBz, kUseShared},
      {kUseStreaming, kSD, kSB, kUsePrefetching},
      {kCMx, kCMy, kCMz, kBMx, kBMy, kBMz},
      {kUFx, kUFy, kUFz, kUseRetiming, kUseConstant},
  };
}

std::vector<Setting> ArtemisOptimizer::propose() {
  using namespace space;
  if (!seeded_) {
    std::vector<Setting> seeds;
    Setting naive;
    naive.set(kTBx, 32);
    naive = space_->checker().canonicalized(naive);
    if (space_->is_valid(naive)) seeds.push_back(naive);
    while (seeds.size() < options_.survivors) {
      seeds.push_back(space_->random_valid(rng_));
    }
    return seeds;
  }
  while (stage_idx_ < stages_.size()) {
    if (!stage_open_) {
      combos_per_candidate_ = std::max<std::size_t>(
          1, options_.max_stage_combos /
                 std::max<std::size_t>(1, survivors_.size()));
      pool_ = survivors_;  // survivors stay eligible
      cand_idx_ = 0;
      combos_ready_ = false;
      stage_open_ = true;
    }
    if (cand_idx_ >= survivors_.size()) {
      close_stage();
      continue;
    }
    if (!combos_ready_) {
      combos_ = enumerate_combos(*space_, stages_[stage_idx_],
                                 combos_per_candidate_, rng_);
      combo_idx_ = 0;
      combos_ready_ = true;
    }
    if (combo_idx_ >= combos_.size()) {
      ++cand_idx_;
      combos_ready_ = false;
      continue;
    }
    // Strictly per-eval, like the original: batching would overshoot tight
    // budgets by a whole chunk.
    return {apply_combo(*space_, stages_[stage_idx_], combos_[combo_idx_],
                        survivors_[cand_idx_].setting)};
  }
  return {};
}

void ArtemisOptimizer::close_stage() {
  std::sort(pool_.begin(), pool_.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.time_ms < b.time_ms;
            });
  std::vector<Candidate> next;
  for (const auto& c : pool_) {
    bool duplicate = false;
    for (const auto& kept : next) {
      if (kept.setting == c.setting) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) next.push_back(c);
    if (next.size() == options_.survivors) break;
  }
  if (!next.empty()) survivors_ = std::move(next);
  ++stage_idx_;
  stage_open_ = false;
}

void ArtemisOptimizer::observe(const std::vector<Setting>& batch,
                               const std::vector<tuner::EvalResult>& results) {
  if (!seeded_) {
    survivors_.clear();
    survivors_.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      survivors_.push_back({batch[i], results[i].time_or_inf()});
    }
    since_mark_ = survivors_.size();
    seeded_ = true;
    mark_ = false;
    allow_stop_ = true;
    return;
  }
  const double t = results[0].time_or_inf();
  if (std::isfinite(t)) pool_.push_back({batch[0], t});
  ++combo_idx_;
  mark_ = false;
  if (++since_mark_ ==
      static_cast<std::size_t>(options_.evals_per_iteration)) {
    mark_ = true;
    since_mark_ = 0;
  }
  allow_stop_ = true;
}

void ArtemisOptimizer::finish(tuner::Evaluator& evaluator) {
  if (seeded_ && since_mark_ > 0) {
    evaluator.mark_iteration();
    since_mark_ = 0;
  }
}

// ---------------------------------------------------------------------------
// RandomOptimizer

RandomOptimizer::RandomOptimizer(std::uint64_t seed) : seed_(seed) {}

void RandomOptimizer::bind(tuner::Evaluator& evaluator) {
  space_ = &evaluator.space();
}

std::vector<Setting> RandomOptimizer::propose() {
  // Every step draws from its own (seed, step)-derived stream, so the only
  // mutable state is the step counter and mid-run restore is exact.
  Rng rng(hash_combine(hash_combine(seed_, 0x52414E44u), completed_steps()));
  std::vector<Setting> batch;
  batch.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    batch.push_back(space_->random_valid(rng));
  }
  return batch;
}

void RandomOptimizer::observe(const std::vector<Setting>& batch,
                              const std::vector<tuner::EvalResult>& results) {
  (void)batch;
  (void)results;
}

bool RandomOptimizer::restore_state(const JsonValue& state) {
  completed_steps_ = static_cast<std::size_t>(state.at("steps").as_u64());
  return true;
}

// ---------------------------------------------------------------------------
// SpreadOptimizer

SpreadOptimizer::SpreadOptimizer(std::uint64_t seed, std::size_t sample_size)
    : seed_(seed), sample_size_(sample_size) {
  CSTUNER_CHECK(sample_size_ >= 1);
}

void SpreadOptimizer::bind(tuner::Evaluator& evaluator) {
  if (!sampled_) {
    // The sample is a pure function of (space, seed) — the exact-count
    // proportioned spread is bit-identical for any worker count — so a
    // restored instance rebuilds the identical sequence here.
    space::LazyUniverse universe(evaluator.space(), {},
                                 evaluator.thread_pool());
    const auto k = static_cast<std::size_t>(std::min<std::uint64_t>(
        sample_size_, universe.valid_count()));
    sample_ = universe.spread_sample(k, seed_);
    sampled_ = true;
  }
}

std::vector<Setting> SpreadOptimizer::propose() {
  const std::size_t begin = completed_steps() * kBatch;
  if (begin >= sample_.size()) return {};
  const std::size_t end = std::min(begin + kBatch, sample_.size());
  return {sample_.begin() + static_cast<std::ptrdiff_t>(begin),
          sample_.begin() + static_cast<std::ptrdiff_t>(end)};
}

void SpreadOptimizer::observe(const std::vector<Setting>& batch,
                              const std::vector<tuner::EvalResult>& results) {
  (void)batch;
  (void)results;
}

bool SpreadOptimizer::restore_state(const JsonValue& state) {
  completed_steps_ = static_cast<std::size_t>(state.at("steps").as_u64());
  return true;
}

}  // namespace cstuner::search
