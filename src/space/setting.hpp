#pragma once
// A concrete parameter setting: one admissible value per Table I parameter.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "space/parameter.hpp"

namespace cstuner::space {

/// Value assignment for all 19 parameters. Stored as actual values (not
/// indices) so constraint checks and models read naturally.
///
/// The content hash is memoized: samplers and tuners hash every setting at
/// creation (universe dedup, cache keys), and the evaluation hot path reuses
/// that value instead of re-chaining 19 hash rounds per call. Mutation
/// through set() / the mutable operator[] invalidates the memo. The memo is
/// a relaxed atomic so concurrent readers of a shared const Setting are
/// race-free; it never changes the hash value itself.
class Setting {
 public:
  Setting() { values_.fill(1); }

  Setting(const Setting& other)
      : values_(other.values_),
        hash_cache_(other.hash_cache_.load(std::memory_order_relaxed)) {}
  Setting& operator=(const Setting& other) {
    values_ = other.values_;
    hash_cache_.store(other.hash_cache_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  std::int64_t get(ParamId id) const {
    return values_[static_cast<std::size_t>(id)];
  }
  void set(ParamId id, std::int64_t value) {
    hash_cache_.store(0, std::memory_order_relaxed);
    values_[static_cast<std::size_t>(id)] = value;
  }

  std::int64_t& operator[](ParamId id) {
    // Handing out a mutable reference: assume the caller writes through it.
    hash_cache_.store(0, std::memory_order_relaxed);
    return values_[static_cast<std::size_t>(id)];
  }
  std::int64_t operator[](ParamId id) const { return get(id); }

  bool flag(ParamId id) const { return get(id) == kOn; }

  const std::array<std::int64_t, kParamCount>& raw() const { return values_; }

  bool operator==(const Setting& other) const {
    return values_ == other.values_;
  }

  /// Stable content hash (for dedup, caches, and noise seeding). Memoized;
  /// the value is a pure function of the parameter values.
  std::uint64_t hash() const;

  /// "TBx=32 TBy=4 ... usePrefetching=off" for diagnostics.
  std::string to_string() const;

  /// Threads per block implied by the TB parameters.
  std::int64_t threads_per_block() const {
    return get(kTBx) * get(kTBy) * get(kTBz);
  }

  /// Output points computed per thread (merge factors, all dimensions).
  std::int64_t points_per_thread() const {
    return get(kCMx) * get(kCMy) * get(kCMz) * get(kBMx) * get(kBMy) *
           get(kBMz);
  }

 private:
  std::array<std::int64_t, kParamCount> values_;
  /// Memoized hash(); 0 means "not computed" (a real zero hash — one in
  /// 2^64 — merely recomputes every call).
  mutable std::atomic<std::uint64_t> hash_cache_{0};
};

/// Collision-safe setting dedup: hash buckets hold the full settings and
/// membership compares contents, so a 64-bit hash collision can never drop
/// a distinct setting (it only costs one extra comparison). The hash
/// function is injectable for tests that force collisions; production
/// callers use the memoized content hash.
class SettingDedup {
 public:
  SettingDedup() : hasher_([](const Setting& s) { return s.hash(); }) {}
  explicit SettingDedup(std::function<std::uint64_t(const Setting&)> hasher)
      : hasher_(std::move(hasher)) {}

  /// True when the setting was not seen before (and records it).
  bool insert(const Setting& setting) {
    auto& bucket = buckets_[hasher_(setting)];
    for (const Setting& seen : bucket) {
      if (seen == setting) return false;
    }
    bucket.push_back(setting);
    ++size_;
    return true;
  }

  std::size_t size() const { return size_; }

 private:
  std::function<std::uint64_t(const Setting&)> hasher_;
  std::unordered_map<std::uint64_t, std::vector<Setting>> buckets_;
  std::size_t size_ = 0;
};

}  // namespace cstuner::space
