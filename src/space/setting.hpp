#pragma once
// A concrete parameter setting: one admissible value per Table I parameter.

#include <array>
#include <cstdint>
#include <string>

#include "space/parameter.hpp"

namespace cstuner::space {

/// Value assignment for all 19 parameters. Stored as actual values (not
/// indices) so constraint checks and models read naturally.
class Setting {
 public:
  Setting() { values_.fill(1); }

  std::int64_t get(ParamId id) const {
    return values_[static_cast<std::size_t>(id)];
  }
  void set(ParamId id, std::int64_t value) {
    values_[static_cast<std::size_t>(id)] = value;
  }

  std::int64_t& operator[](ParamId id) {
    return values_[static_cast<std::size_t>(id)];
  }
  std::int64_t operator[](ParamId id) const { return get(id); }

  bool flag(ParamId id) const { return get(id) == kOn; }

  const std::array<std::int64_t, kParamCount>& raw() const { return values_; }

  bool operator==(const Setting& other) const = default;

  /// Stable content hash (for dedup, caches, and noise seeding).
  std::uint64_t hash() const;

  /// "TBx=32 TBy=4 ... usePrefetching=off" for diagnostics.
  std::string to_string() const;

  /// Threads per block implied by the TB parameters.
  std::int64_t threads_per_block() const {
    return get(kTBx) * get(kTBy) * get(kTBz);
  }

  /// Output points computed per thread (merge factors, all dimensions).
  std::int64_t points_per_thread() const {
    return get(kCMx) * get(kCMy) * get(kCMz) * get(kBMx) * get(kBMy) *
           get(kBMz);
  }

 private:
  std::array<std::int64_t, kParamCount> values_;
};

}  // namespace cstuner::space
