#include "space/search_space.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "space/lazy_universe.hpp"

namespace cstuner::space {

SearchSpace::SearchSpace(stencil::StencilSpec spec, SpaceLimits space_limits,
                         ResourceLimits resource_limits)
    : spec_(std::move(spec)),
      space_limits_(space_limits),
      parameters_(make_parameters(spec_, space_limits_)),
      checker_(std::make_unique<ConstraintChecker>(spec_, parameters_,
                                                   resource_limits)) {}

Setting SearchSpace::random_setting(Rng& rng) const {
  // Constructive sampling: draw each parameter uniformly from the values
  // that remain admissible given the structural (explicit) constraints of
  // §IV-B, so rejection sampling only has to handle the implicit resource
  // constraints. Joint-uniform sampling of Table I is hopeless here — the
  // coverage/unroll/TB-product rules reject all but ~1e-4 of draws.
  auto pick_at_most = [&](ParamId id, std::int64_t cap) {
    const auto& values = parameters_[static_cast<std::size_t>(id)].values;
    std::size_t count = 0;
    while (count < values.size() && values[count] <= cap) ++count;
    CSTUNER_CHECK(count >= 1);
    return values[rng.index(count)];
  };
  auto pick_any = [&](ParamId id) {
    const auto& values = parameters_[static_cast<std::size_t>(id)].values;
    return values[rng.index(values.size())];
  };

  Setting s;
  s.set(kUseShared, pick_any(kUseShared));
  s.set(kUseConstant, pick_any(kUseConstant));
  s.set(kUseRetiming, pick_any(kUseRetiming));
  s.set(kUseStreaming, pick_any(kUseStreaming));

  const bool streaming = s.flag(kUseStreaming);
  int sd = -1;
  if (streaming) {
    s.set(kSD, pick_any(kSD));
    sd = static_cast<int>(s.get(kSD)) - 1;
    s.set(kSB, pick_at_most(
                   kSB, spec_.grid[static_cast<std::size_t>(sd)]));
    s.set(kUsePrefetching, pick_any(kUsePrefetching));
    // Temporal blocking (extension) piggybacks on the streaming pipeline
    // and needs a single in/out grid pair.
    if (spec_.n_inputs == 1 && spec_.n_outputs == 1) {
      s.set(kTemporal, pick_any(kTemporal));
    }
  }

  // Thread-block shape under the 1024-thread cap (streaming dim stays 1).
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};
  const ParamId uf[] = {kUFx, kUFy, kUFz};
  const std::int64_t max_threads =
      checker_->limits().max_threads_per_block;
  std::int64_t tb_budget = max_threads;
  // Randomize the dimension order so no dimension is systematically
  // starved of large thread counts.
  int order[3] = {0, 1, 2};
  for (int i = 2; i > 0; --i) {
    std::swap(order[i], order[rng.index(static_cast<std::size_t>(i) + 1)]);
  }
  for (int d : order) {
    const std::int64_t extent = spec_.grid[static_cast<std::size_t>(d)];
    if (streaming && d == sd) {
      s.set(tb[d], 1);
      continue;
    }
    s.set(tb[d], pick_at_most(tb[d], std::min(tb_budget, extent)));
    tb_budget /= s.get(tb[d]);
  }

  // Merge factors within the per-dimension coverage budget, then unrolling
  // within the merged trip count (or SB along the streaming dimension).
  for (int d = 0; d < 3; ++d) {
    const std::int64_t extent = spec_.grid[static_cast<std::size_t>(d)];
    if (streaming && d == sd) {
      s.set(cm[d], 1);
      s.set(bm[d], 1);
      s.set(uf[d], pick_at_most(uf[d], s.get(kSB)));
      continue;
    }
    std::int64_t coverage_budget = extent / s.get(tb[d]);
    s.set(cm[d], pick_at_most(cm[d], std::max<std::int64_t>(coverage_budget, 1)));
    coverage_budget /= s.get(cm[d]);
    s.set(bm[d], pick_at_most(bm[d], std::max<std::int64_t>(coverage_budget, 1)));
    s.set(uf[d], pick_at_most(uf[d], s.get(cm[d]) * s.get(bm[d])));
  }
  return checker_->canonicalized(s);
}

Setting SearchSpace::random_valid(Rng& rng, std::size_t max_tries) const {
  for (std::size_t attempt = 0; attempt < max_tries; ++attempt) {
    Setting s = random_setting(rng);
    if (checker_->is_valid(s)) return s;
  }
  throw Error("random_valid: no valid setting found in " +
              std::to_string(max_tries) + " attempts");
}

std::vector<Setting> SearchSpace::sample_universe(
    Rng& rng, std::size_t count, std::size_t max_tries_factor) const {
  // Constraint-propagating enumeration replaces the historical rejection
  // sampler: the exact valid count is known up front, spaces no larger than
  // `count` are taken whole, and larger ones contribute a count-proportioned
  // spread sample whose phase is salted from the caller's RNG — still
  // seed-dependent, but every pick lands on a distinct valid setting instead
  // of rejecting (and occasionally under-filling) its way there. Exactly one
  // RNG draw is consumed per call on this path, so downstream draws stay
  // aligned across spaces of any size.
  const std::uint64_t salt = rng.next() | 1;  // nonzero: 0 means "no phase"
  try {
    LazyUniverse lazy(*this);
    if (lazy.valid_count() <= count) return lazy.take_all();
    return lazy.spread_sample(count, salt);
  } catch (const Error&) {
    // A space the symbolic enumerator cannot decompose falls back to the
    // constructive sampler below.
  }
  return sample_constructive(rng, count, max_tries_factor);
}

std::vector<Setting> SearchSpace::sample_constructive(
    Rng& rng, std::size_t count, std::size_t max_tries_factor) const {
  std::vector<Setting> out;
  // Content-comparing dedup: a raw hash-set of 64-bit hashes would silently
  // drop a distinct setting on collision.
  SettingDedup seen;
  const std::size_t max_tries = count * max_tries_factor;
  for (std::size_t attempt = 0; attempt < max_tries && out.size() < count;
       ++attempt) {
    Setting s = random_setting(rng);
    if (!checker_->is_valid(s)) continue;
    if (seen.insert(s)) out.push_back(s);
  }
  return out;
}

double SearchSpace::log10_cartesian_size() const {
  double lg = 0.0;
  for (const Parameter& p : parameters_) {
    lg += std::log10(static_cast<double>(p.cardinality()));
  }
  return lg;
}

std::vector<double> SearchSpace::to_feature_row(const Setting& setting) {
  std::vector<double> row(kParamCount);
  for (std::size_t i = 0; i < kParamCount; ++i) {
    row[i] = static_cast<double>(setting.get(static_cast<ParamId>(i)));
  }
  return row;
}

double SearchSpace::cv_encoded(ParamId id, std::int64_t value) {
  if (is_numeric(id)) {
    return std::log2(static_cast<double>(value)) + 1.0;  // keep mean > 0
  }
  return static_cast<double>(value);
}

}  // namespace cstuner::space
