#include "space/setting.hpp"

#include <sstream>

#include "common/rng.hpp"

namespace cstuner::space {

std::uint64_t Setting::hash() const {
  const std::uint64_t cached = hash_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  std::uint64_t h = 0x435354554e4552ULL;  // "CSTUNER"
  for (std::int64_t v : values_) {
    h = hash_combine(h, static_cast<std::uint64_t>(v));
  }
  hash_cache_.store(h, std::memory_order_relaxed);
  return h;
}

std::string Setting::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < kParamCount; ++i) {
    const auto id = static_cast<ParamId>(i);
    if (i) os << ' ';
    os << param_name(id) << '=';
    if (!is_numeric(id) && id != kSD) {
      os << (values_[i] == kOn ? "on" : "off");
    } else {
      os << values_[i];
    }
  }
  return os.str();
}

}  // namespace cstuner::space
