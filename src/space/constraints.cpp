#include "space/constraints.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cstuner::space {

ConstraintChecker::ConstraintChecker(const stencil::StencilSpec& spec,
                                     const std::vector<Parameter>& parameters,
                                     const ResourceLimits& limits)
    : spec_(spec), parameters_(parameters), limits_(limits) {
  CSTUNER_CHECK(parameters_.size() == kParamCount);
  // Admissibility bitmaps for the fast path. Parameter values are small
  // (pow-2 factors up to the grid extent, unit-stride enums), so a dense
  // bitmap over [min, max] fits easily; anything wider falls back to the
  // parameter's own sorted lookup.
  constexpr std::int64_t kMaxDenseSpan = 4096;
  for (std::size_t i = 0; i < kParamCount; ++i) {
    const auto& values = parameters_[i].values;
    if (values.empty()) continue;
    AdmissibleBits& bits = admissible_[i];
    const std::int64_t min = values.front();
    const std::int64_t max = values.back();
    if (max - min >= kMaxDenseSpan) continue;
    bits.min = min;
    bits.max = max;
    bits.words.assign(static_cast<std::size_t>((max - min) / 64 + 1), 0);
    for (const std::int64_t v : values) {
      const auto off = static_cast<std::uint64_t>(v - min);
      bits.words[off >> 6] |= std::uint64_t{1} << (off & 63);
    }
  }
}

Setting ConstraintChecker::canonicalized(Setting setting) const {
  if (!setting.flag(kUseStreaming)) {
    setting.set(kSD, 1);
    setting.set(kSB, 1);
    setting.set(kUsePrefetching, kOff);
  }
  return setting;
}

Setting ConstraintChecker::repaired(Setting s) const {
  s = canonicalized(s);
  const bool streaming = s.flag(kUseStreaming);
  const int sd = static_cast<int>(s.get(kSD)) - 1;
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId uf[] = {kUFx, kUFy, kUFz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};

  auto lower_to = [&](ParamId id, std::int64_t cap) {
    // Largest admissible value <= cap (admissible sets always contain 1).
    const auto& values =
        parameters_[static_cast<std::size_t>(id)].values;
    std::int64_t best = 1;
    for (auto v : values) {
      if (v <= cap) best = v;
    }
    if (s.get(id) > best) s.set(id, best);
  };

  if (streaming) {
    s.set(tb[sd], 1);
    s.set(cm[sd], 1);
    s.set(bm[sd], 1);
    lower_to(kSB, spec_.grid[static_cast<std::size_t>(sd)]);
    lower_to(uf[sd], s.get(kSB));
  }

  // Snap the temporal factor to an admissible value, then collapse it when
  // the stencil/pipeline cannot express temporal blocking at all.
  lower_to(kTemporal, s.get(kTemporal));
  if (s.get(kTemporal) > 1 &&
      (!streaming || spec_.n_inputs != 1 || spec_.n_outputs != 1)) {
    s.set(kTemporal, 1);
  }

  // Thread-block size cap: shrink the largest dimension until it fits.
  while (s.threads_per_block() > limits_.max_threads_per_block) {
    ParamId largest = tb[0];
    for (ParamId id : tb) {
      if (s.get(id) > s.get(largest)) largest = id;
    }
    s.set(largest, std::max<std::int64_t>(1, s.get(largest) / 2));
  }

  // Per-dimension coverage and unroll rules.
  for (int d = 0; d < 3; ++d) {
    if (streaming && d == sd) continue;
    const std::int64_t extent = spec_.grid[static_cast<std::size_t>(d)];
    lower_to(tb[d], extent);
    lower_to(cm[d], extent / s.get(tb[d]));
    lower_to(bm[d], extent / (s.get(tb[d]) * s.get(cm[d])));
    lower_to(uf[d], s.get(cm[d]) * s.get(bm[d]));
  }

  // Implicit resource rules: shed merge/unroll pressure, then shared
  // memory, then thread count.
  for (int guard = 0; guard < 64 && violation(s).has_value(); ++guard) {
    const ResourceUsage usage = estimate_resources(spec_, s, limits_);
    if (usage.shared_mem_per_block > limits_.max_smem_per_block) {
      // Shrink the widest merge factor; give up on smem staging if merges
      // are already minimal.
      ParamId widest = cm[0];
      for (ParamId id : {kCMx, kCMy, kCMz, kBMx, kBMy, kBMz}) {
        if (s.get(id) > s.get(widest)) widest = id;
      }
      if (s.get(widest) > 1) {
        s.set(widest, s.get(widest) / 2);
      } else {
        s.set(kUseShared, kOff);
      }
      continue;
    }
    // Register pressure (per thread or per block): halve the largest
    // merge/unroll factor; fall back to shrinking the block.
    ParamId largest = cm[0];
    for (ParamId id :
         {kCMx, kCMy, kCMz, kBMx, kBMy, kBMz, kUFx, kUFy, kUFz}) {
      if (s.get(id) > s.get(largest)) largest = id;
    }
    if (s.get(largest) > 1) {
      s.set(largest, s.get(largest) / 2);
      // Keep the unroll rule intact after shrinking a merge factor.
      for (int d = 0; d < 3; ++d) {
        if (streaming && d == sd) continue;
        lower_to(uf[d], s.get(cm[d]) * s.get(bm[d]));
      }
    } else {
      ParamId big_tb = tb[0];
      for (ParamId id : tb) {
        if (s.get(id) > s.get(big_tb)) big_tb = id;
      }
      if (s.get(big_tb) == 1) break;  // nothing left to shed
      s.set(big_tb, s.get(big_tb) / 2);
    }
  }
  return s;
}

bool ConstraintChecker::is_valid(const Setting& setting,
                                 ResourceUsage* usage_out) const {
  // Mirrors violation() rule for rule (same order, same conditions) so the
  // two entry points can never disagree; test_space cross-checks them.

  // Rule 0: admissible values (bitmap fast path).
  for (std::size_t i = 0; i < kParamCount; ++i) {
    if (!admissible_[i].contains(setting.get(static_cast<ParamId>(i)),
                                 parameters_[i])) {
      return false;
    }
  }

  // Rule 1: thread-block size limit.
  if (setting.threads_per_block() > limits_.max_threads_per_block) {
    return false;
  }

  const bool streaming = setting.flag(kUseStreaming);
  const int sd = static_cast<int>(setting.get(kSD)) - 1;
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId uf[] = {kUFx, kUFy, kUFz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};

  // Rule 2: canonical encoding of the streaming-dependent parameters.
  if (!streaming) {
    if (setting.get(kSD) != 1 || setting.get(kSB) != 1) return false;
    if (setting.flag(kUsePrefetching)) return false;
  }

  // Rule 3: per-dimension coverage within the grid.
  for (int d = 0; d < 3; ++d) {
    const std::int64_t coverage = setting.get(tb[d]) * setting.get(cm[d]) *
                                  setting.get(bm[d]);
    if (coverage > spec_.grid[static_cast<std::size_t>(d)]) return false;
  }

  if (streaming) {
    // Rules 4-6: 2.5-D blocking shape, SB within the streamed extent,
    // streamed-dimension unroll bounded by SB.
    if (setting.get(tb[sd]) != 1 || setting.get(cm[sd]) != 1 ||
        setting.get(bm[sd]) != 1) {
      return false;
    }
    if (setting.get(kSB) > spec_.grid[static_cast<std::size_t>(sd)]) {
      return false;
    }
    if (setting.get(uf[sd]) > setting.get(kSB)) return false;
  }

  // Rule 7: unroll bounded by the merged trip count.
  for (int d = 0; d < 3; ++d) {
    if (streaming && d == sd) continue;
    if (setting.get(uf[d]) > setting.get(cm[d]) * setting.get(bm[d])) {
      return false;
    }
  }

  // Rule 10: temporal blocking needs a single-grid streaming pipeline.
  if (setting.get(kTemporal) > 1) {
    if (spec_.n_inputs != 1 || spec_.n_outputs != 1) return false;
    if (!streaming) return false;
  }

  // Rules 8/8b/9: register spill, block register demand, shared memory.
  const ResourceUsage usage = estimate_resources(spec_, setting, limits_);
  if (usage.spilled) return false;
  if (block_registers(setting.threads_per_block(),
                      usage.registers_per_thread) >
      limits_.max_registers_per_block) {
    return false;
  }
  if (usage.shared_mem_per_block > limits_.max_smem_per_block) return false;

  if (usage_out != nullptr) *usage_out = usage;
  return true;
}

std::optional<std::string> ConstraintChecker::violation(
    const Setting& setting) const {
  // Rule 0: every value must be admissible for its parameter.
  for (std::size_t i = 0; i < kParamCount; ++i) {
    const auto id = static_cast<ParamId>(i);
    if (!parameters_[i].contains(setting.get(id))) {
      std::ostringstream os;
      os << param_name(id) << '=' << setting.get(id)
         << " is not an admissible value";
      return os.str();
    }
  }

  // Rule 1: thread-block size limit (TBx*TBy*TBz <= 1024).
  if (setting.threads_per_block() > limits_.max_threads_per_block) {
    return "thread block exceeds " +
           std::to_string(limits_.max_threads_per_block) + " threads";
  }

  const bool streaming = setting.flag(kUseStreaming);
  const int sd = static_cast<int>(setting.get(kSD)) - 1;
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId uf[] = {kUFx, kUFy, kUFz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};

  // Rule 2: streaming-dependent parameters are only meaningful when
  // streaming is enabled (canonical encoding).
  if (!streaming) {
    if (setting.get(kSD) != 1 || setting.get(kSB) != 1) {
      return "SD/SB require streaming to be enabled";
    }
    if (setting.flag(kUsePrefetching)) {
      return "prefetching overlaps streaming plane loads; requires streaming";
    }
  }

  // Rule 3: per-dimension coverage cannot exceed the grid.
  for (int d = 0; d < 3; ++d) {
    const std::int64_t coverage = setting.get(tb[d]) * setting.get(cm[d]) *
                                  setting.get(bm[d]);
    if (coverage > spec_.grid[static_cast<std::size_t>(d)]) {
      std::ostringstream os;
      os << "dimension " << d << " coverage " << coverage
         << " exceeds grid extent "
         << spec_.grid[static_cast<std::size_t>(d)];
      return os.str();
    }
  }

  if (streaming) {
    // Rule 4: 2.5-D blocking — the streaming dimension is traversed by the
    // stream loop, so its block extent and merge factors collapse to 1.
    if (setting.get(tb[sd]) != 1 || setting.get(cm[sd]) != 1 ||
        setting.get(bm[sd]) != 1) {
      return "streaming dimension must have TB=CM=BM=1 (2.5-D blocking)";
    }
    // Rule 5: concurrent-streaming tile fits the streaming dimension.
    if (setting.get(kSB) > spec_.grid[static_cast<std::size_t>(sd)]) {
      return "SB exceeds the streaming dimension extent";
    }
    // Rule 6 (paper, §IV-B): unroll factor along the streaming dimension is
    // bounded by the concurrent-streaming tile.
    if (setting.get(uf[sd]) > setting.get(kSB)) {
      return "unroll factor in streaming dimension exceeds SB";
    }
  }

  // Rule 7: elsewhere, unrolling applies to the per-thread merge loops, so
  // the factor cannot exceed the merged trip count.
  for (int d = 0; d < 3; ++d) {
    if (streaming && d == sd) continue;
    const std::int64_t trip = setting.get(cm[d]) * setting.get(bm[d]);
    if (setting.get(uf[d]) > trip) {
      std::ostringstream os;
      os << "UF" << "xyz"[d] << '=' << setting.get(uf[d])
         << " exceeds merged trip count " << trip;
      return os.str();
    }
  }

  // Rule 10 (extension): temporal blocking fuses time steps, which needs a
  // ping-pong single-grid stencil and a streaming pipeline to carry the
  // wavefronts (AN5D-style).
  if (setting.get(kTemporal) > 1) {
    if (spec_.n_inputs != 1 || spec_.n_outputs != 1) {
      return "temporal blocking requires a single in/out grid pair";
    }
    if (!streaming) {
      return "temporal blocking requires streaming";
    }
  }

  // Rule 8 (implicit): register pressure — spilled kernels are not explored.
  const ResourceUsage usage = estimate_resources(spec_, setting, limits_);
  if (usage.spilled) {
    std::ostringstream os;
    os << "register spill: " << usage.registers_per_thread << " > "
       << limits_.max_registers_per_thread;
    return os.str();
  }

  // Rule 8b (implicit): the block's total register demand must fit the SM
  // register file or the kernel cannot launch at all.
  // Mirror the hardware's per-warp allocation granularity (256 registers)
  // so "valid" always implies "launchable" in the occupancy calculator.
  const std::int64_t block_regs = block_registers(
      setting.threads_per_block(), usage.registers_per_thread);
  if (block_regs > limits_.max_registers_per_block) {
    std::ostringstream os;
    os << "block needs " << block_regs << " registers; register file holds "
       << limits_.max_registers_per_block;
    return os.str();
  }

  // Rule 9 (implicit): shared-memory capacity.
  if (usage.shared_mem_per_block > limits_.max_smem_per_block) {
    std::ostringstream os;
    os << "shared memory " << usage.shared_mem_per_block << "B exceeds "
       << limits_.max_smem_per_block << "B";
    return os.str();
  }

  return std::nullopt;
}

}  // namespace cstuner::space
