#include "space/parameter.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/math_util.hpp"

namespace cstuner::space {

std::size_t Parameter::value_index(std::int64_t value) const {
  const auto it = std::lower_bound(values.begin(), values.end(), value);
  CSTUNER_CHECK_MSG(it != values.end() && *it == value,
                    "value not admissible for parameter " + name);
  return static_cast<std::size_t>(it - values.begin());
}

bool Parameter::contains(std::int64_t value) const {
  return std::binary_search(values.begin(), values.end(), value);
}

const char* param_name(ParamId id) {
  static const char* kNames[kParamCount] = {
      "TBx", "TBy", "TBz", "useShared", "useConstant", "useStreaming",
      "SD",  "SB",  "UFx", "UFy",       "UFz",         "CMx",
      "CMy", "CMz", "BMx", "BMy",       "BMz",         "useRetiming",
      "usePrefetching",    "TF"};
  return kNames[static_cast<std::size_t>(id)];
}

bool is_numeric(ParamId id) {
  switch (id) {
    case kTBx:
    case kTBy:
    case kTBz:
    case kSB:
    case kUFx:
    case kUFy:
    case kUFz:
    case kCMx:
    case kCMy:
    case kCMz:
    case kBMx:
    case kBMy:
    case kBMz:
    case kTemporal:
      return true;
    default:
      return false;
  }
}

int param_dimension(ParamId id) {
  switch (id) {
    case kTBx:
    case kUFx:
    case kCMx:
    case kBMx:
      return 0;
    case kTBy:
    case kUFy:
    case kCMy:
    case kBMy:
      return 1;
    case kTBz:
    case kUFz:
    case kCMz:
    case kBMz:
      return 2;
    default:
      return -1;
  }
}

namespace {

Parameter make_pow2(ParamId id, std::int64_t max_value) {
  Parameter p;
  p.id = id;
  p.name = param_name(id);
  p.kind = ParamKind::kPow2;
  p.values = pow2_range(max_value);
  return p;
}

Parameter make_bool(ParamId id) {
  Parameter p;
  p.id = id;
  p.name = param_name(id);
  p.kind = ParamKind::kBool;
  p.values = {kOff, kOn};
  return p;
}

Parameter make_enum(ParamId id, std::int64_t count) {
  Parameter p;
  p.id = id;
  p.name = param_name(id);
  p.kind = ParamKind::kEnum;
  for (std::int64_t v = 1; v <= count; ++v) p.values.push_back(v);
  return p;
}

}  // namespace

std::vector<Parameter> make_parameters(const stencil::StencilSpec& spec,
                                       const SpaceLimits& limits) {
  const auto m = [&](int d) {
    return static_cast<std::int64_t>(spec.grid[static_cast<std::size_t>(d)]);
  };
  std::vector<Parameter> params;
  params.reserve(kParamCount);
  params.push_back(make_pow2(kTBx, std::min(limits.max_tb_xy, m(0))));
  params.push_back(make_pow2(kTBy, std::min(limits.max_tb_xy, m(1))));
  params.push_back(make_pow2(kTBz, std::min(limits.max_tb_z, m(2))));
  params.push_back(make_bool(kUseShared));
  params.push_back(make_bool(kUseConstant));
  params.push_back(make_bool(kUseStreaming));
  params.push_back(make_enum(kSD, 3));
  // SB ranges over [1, M_SD]; SD is itself tunable, so admit up to the
  // largest dimension and let the constraint checker enforce SB <= M_SD.
  const std::int64_t max_dim = std::max({m(0), m(1), m(2)});
  params.push_back(make_pow2(kSB, max_dim));
  for (ParamId id : {kUFx, kUFy, kUFz}) {
    params.push_back(
        make_pow2(id, std::min(limits.max_unroll, m(param_dimension(id)))));
  }
  for (ParamId id : {kCMx, kCMy, kCMz, kBMx, kBMy, kBMz}) {
    params.push_back(
        make_pow2(id, std::min(limits.max_merge, m(param_dimension(id)))));
  }
  params.push_back(make_bool(kUseRetiming));
  params.push_back(make_bool(kUsePrefetching));
  params.push_back(make_pow2(kTemporal, std::max<std::int64_t>(
                                            1, limits.max_temporal)));
  CSTUNER_CHECK(params.size() == kParamCount);
  for (std::size_t i = 0; i < params.size(); ++i) {
    CSTUNER_CHECK(params[i].id == static_cast<ParamId>(i));
  }
  return params;
}

}  // namespace cstuner::space
