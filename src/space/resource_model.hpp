#pragma once
// Static resource-usage estimation for a (stencil, setting) pair: registers
// per thread and shared memory per block. This implements the paper's
// *implicit* constraints ("the settings of the block merging and loop
// unrolling are restricted by the usage of register and shared memory;
// csTuner checks the above constraints ... so that only non-spilled
// parameter settings are explored").
//
// The estimates follow the usual cost structure of stencil code generators
// (cf. Rawat et al. [36], AN5D [25]): a base cost for index arithmetic, live
// neighbour values scaling with order and input arrays, accumulators scaling
// with merge/unroll products, prefetch buffers, and a retiming discount for
// high-order stencils.

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "space/setting.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::space {

struct ResourceUsage {
  int registers_per_thread = 0;
  std::int64_t shared_mem_per_block = 0;  ///< bytes; 0 when useShared is off
  bool spilled = false;                   ///< registers exceed the ISA limit
};

struct ResourceLimits {
  int max_registers_per_thread = 255;       ///< CUDA ISA limit
  /// SM register file: a block whose warps need more than this cannot
  /// launch at all (zero occupancy), so such settings are invalid.
  std::int64_t max_registers_per_block = 65536;
  std::int64_t max_smem_per_block = 48 * 1024;
  std::int64_t max_threads_per_block = 1024;

  /// Equality lets callers prove a cached ResourceUsage (computed by a
  /// constraint checker with these limits) is reusable where the default
  /// limits are assumed — estimate_resources is pure, so equal limits give
  /// bit-identical usage.
  bool operator==(const ResourceLimits&) const = default;
};

/// Estimates register and shared-memory consumption of the generated kernel.
ResourceUsage estimate_resources(const stencil::StencilSpec& spec,
                                 const Setting& setting,
                                 const ResourceLimits& limits = {});

/// Inline core of estimate_resources over the three spec fields the model
/// actually reads. The batch oracle (gpusim) calls this with per-stencil
/// hoisted invariants; the wrapper above with the spec itself. One body, so
/// the two paths agree bit for bit.
inline ResourceUsage estimate_resources_core(int order, int n_inputs,
                                             int n_outputs,
                                             const Setting& setting,
                                             const ResourceLimits& limits) {
  ResourceUsage usage;

  const bool streaming = setting.flag(kUseStreaming);
  const int sd = static_cast<int>(setting.get(kSD)) - 1;  // 0-based dim

  // --- Registers -----------------------------------------------------------
  // Base cost: thread/block index arithmetic, bounds checks, loop counters.
  double regs = 22.0 + 2.0 * order;

  // Pointers and live values per input array referenced.
  regs += 2.0 * n_inputs + 1.5 * n_outputs;

  // Accumulators for merged output points: every merged point needs its own
  // running sum per output array (the dominant pressure source).
  const double merged = static_cast<double>(setting.points_per_thread());
  regs += 1.6 * (merged - 1.0) * static_cast<double>(n_outputs);

  // Unrolled loop bodies keep extra neighbour values live.
  const double unroll = static_cast<double>(
      setting.get(kUFx) * setting.get(kUFy) * setting.get(kUFz));
  regs += 2.2 * (unroll - 1.0);

  // Streaming keeps a register plane of current/previous values per input;
  // each fused time step (temporal blocking) adds another wavefront window.
  if (streaming) {
    regs += (2.0 * order + 1.0) * std::min<double>(n_inputs, 3.0);
    const double tf = static_cast<double>(setting.get(kTemporal));
    regs += 1.8 * (2.0 * order + 1.0) * (tf - 1.0);
  }

  // Prefetching double-buffers the next plane in registers.
  if (setting.flag(kUsePrefetching)) {
    regs += (2.0 * order + 2.0) * std::min<double>(n_inputs, 3.0);
  }

  // Without shared memory, neighbour reuse happens in registers instead.
  if (!setting.flag(kUseShared)) {
    regs += 2.0 * order;
  }

  // Retiming homogenizes accesses and relieves pressure for high-order
  // stencils (§II-B4); for low-order ones it just adds accumulators.
  if (setting.flag(kUseRetiming)) {
    if (order >= 2) {
      regs *= 0.82;
    } else {
      regs += 4.0;
    }
  }

  usage.registers_per_thread = static_cast<int>(std::lround(regs));
  usage.spilled =
      usage.registers_per_thread > limits.max_registers_per_thread;

  // --- Shared memory -------------------------------------------------------
  if (setting.flag(kUseShared)) {
    // Staged input arrays: generators stage at most a couple of the hottest
    // arrays; the rest stay in global memory / caches.
    const std::int64_t staged = std::min<std::int64_t>(n_inputs, 2);
    std::int64_t elems = 1;
    const ParamId tb[] = {kTBx, kTBy, kTBz};
    const ParamId cm[] = {kCMx, kCMy, kCMz};
    const ParamId bm[] = {kBMx, kBMy, kBMz};
    for (int d = 0; d < 3; ++d) {
      if (streaming && d == sd) {
        // 2.5-D blocking holds a sliding window of planes along SD (one
        // extra plane when prefetching; one window per fused time step).
        elems *= (2 * order + 1 +
                  (setting.flag(kUsePrefetching) ? 1 : 0)) *
                 setting.get(kTemporal);
      } else {
        const std::int64_t tile = setting.get(tb[d]) * setting.get(cm[d]) *
                                  setting.get(bm[d]);
        elems *= tile + 2 * order;
      }
    }
    usage.shared_mem_per_block = elems * 8 * staged;
  }
  return usage;
}

/// Register-file demand of a whole block: warps of 32 threads, each warp's
/// allocation rounded up to the hardware granularity of 256 registers.
/// Rule 8b (constraints.cpp) and the symbolic space engine (lazy_universe,
/// analysis/propagate) share this body so "valid" and "proven valid" can
/// never disagree on launchability.
inline std::int64_t block_registers(std::int64_t threads_per_block,
                                    int registers_per_thread) {
  const std::int64_t warps = (threads_per_block + 31) / 32;
  const std::int64_t regs_per_warp =
      ((static_cast<std::int64_t>(registers_per_thread) * 32 + 255) / 256) *
      256;
  return warps * regs_per_warp;
}

/// Shared-memory tile element count along one dimension (tile + halo).
std::int64_t smem_tile_extent(const stencil::StencilSpec& spec,
                              const Setting& setting, int dim);

}  // namespace cstuner::space
