#pragma once
// Static resource-usage estimation for a (stencil, setting) pair: registers
// per thread and shared memory per block. This implements the paper's
// *implicit* constraints ("the settings of the block merging and loop
// unrolling are restricted by the usage of register and shared memory;
// csTuner checks the above constraints ... so that only non-spilled
// parameter settings are explored").
//
// The estimates follow the usual cost structure of stencil code generators
// (cf. Rawat et al. [36], AN5D [25]): a base cost for index arithmetic, live
// neighbour values scaling with order and input arrays, accumulators scaling
// with merge/unroll products, prefetch buffers, and a retiming discount for
// high-order stencils.

#include <cstdint>

#include "space/setting.hpp"
#include "stencil/stencil_spec.hpp"

namespace cstuner::space {

struct ResourceUsage {
  int registers_per_thread = 0;
  std::int64_t shared_mem_per_block = 0;  ///< bytes; 0 when useShared is off
  bool spilled = false;                   ///< registers exceed the ISA limit
};

struct ResourceLimits {
  int max_registers_per_thread = 255;       ///< CUDA ISA limit
  /// SM register file: a block whose warps need more than this cannot
  /// launch at all (zero occupancy), so such settings are invalid.
  std::int64_t max_registers_per_block = 65536;
  std::int64_t max_smem_per_block = 48 * 1024;
  std::int64_t max_threads_per_block = 1024;
};

/// Estimates register and shared-memory consumption of the generated kernel.
ResourceUsage estimate_resources(const stencil::StencilSpec& spec,
                                 const Setting& setting,
                                 const ResourceLimits& limits = {});

/// Shared-memory tile element count along one dimension (tile + halo).
std::int64_t smem_tile_extent(const stencil::StencilSpec& spec,
                              const Setting& setting, int dim);

}  // namespace cstuner::space
