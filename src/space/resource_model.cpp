#include "space/resource_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"

namespace cstuner::space {

std::int64_t smem_tile_extent(const stencil::StencilSpec& spec,
                              const Setting& setting, int dim) {
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};
  const std::int64_t tile = setting.get(tb[dim]) * setting.get(cm[dim]) *
                            setting.get(bm[dim]);
  return tile + 2 * spec.order;
}

ResourceUsage estimate_resources(const stencil::StencilSpec& spec,
                                 const Setting& setting,
                                 const ResourceLimits& limits) {
  ResourceUsage usage;

  const bool streaming = setting.flag(kUseStreaming);
  const int sd = static_cast<int>(setting.get(kSD)) - 1;  // 0-based dim

  // --- Registers -----------------------------------------------------------
  // Base cost: thread/block index arithmetic, bounds checks, loop counters.
  double regs = 22.0 + 2.0 * spec.order;

  // Pointers and live values per input array referenced.
  regs += 2.0 * spec.n_inputs + 1.5 * spec.n_outputs;

  // Accumulators for merged output points: every merged point needs its own
  // running sum per output array (the dominant pressure source).
  const double merged = static_cast<double>(setting.points_per_thread());
  regs += 1.6 * (merged - 1.0) * static_cast<double>(spec.n_outputs);

  // Unrolled loop bodies keep extra neighbour values live.
  const double unroll = static_cast<double>(
      setting.get(kUFx) * setting.get(kUFy) * setting.get(kUFz));
  regs += 2.2 * (unroll - 1.0);

  // Streaming keeps a register plane of current/previous values per input;
  // each fused time step (temporal blocking) adds another wavefront window.
  if (streaming) {
    regs += (2.0 * spec.order + 1.0) *
            std::min<double>(spec.n_inputs, 3.0);
    const double tf = static_cast<double>(setting.get(kTemporal));
    regs += 1.8 * (2.0 * spec.order + 1.0) * (tf - 1.0);
  }

  // Prefetching double-buffers the next plane in registers.
  if (setting.flag(kUsePrefetching)) {
    regs += (2.0 * spec.order + 2.0) * std::min<double>(spec.n_inputs, 3.0);
  }

  // Without shared memory, neighbour reuse happens in registers instead.
  if (!setting.flag(kUseShared)) {
    regs += 2.0 * spec.order;
  }

  // Retiming homogenizes accesses and relieves pressure for high-order
  // stencils (§II-B4); for low-order ones it just adds accumulators.
  if (setting.flag(kUseRetiming)) {
    if (spec.order >= 2) {
      regs *= 0.82;
    } else {
      regs += 4.0;
    }
  }

  usage.registers_per_thread = static_cast<int>(std::lround(regs));
  usage.spilled =
      usage.registers_per_thread > limits.max_registers_per_thread;

  // --- Shared memory --------------------------------------------------------
  if (setting.flag(kUseShared)) {
    // Staged input arrays: generators stage at most a couple of the hottest
    // arrays; the rest stay in global memory / caches.
    const std::int64_t staged = std::min<std::int64_t>(spec.n_inputs, 2);
    std::int64_t elems = 1;
    for (int d = 0; d < 3; ++d) {
      if (streaming && d == sd) {
        // 2.5-D blocking holds a sliding window of planes along SD (one
        // extra plane when prefetching; one window per fused time step).
        elems *= (2 * spec.order + 1 +
                  (setting.flag(kUsePrefetching) ? 1 : 0)) *
                 setting.get(kTemporal);
      } else {
        elems *= smem_tile_extent(spec, setting, d);
      }
    }
    usage.shared_mem_per_block = elems * 8 * staged;
  }
  return usage;
}

}  // namespace cstuner::space
