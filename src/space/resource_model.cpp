#include "space/resource_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/math_util.hpp"

namespace cstuner::space {

std::int64_t smem_tile_extent(const stencil::StencilSpec& spec,
                              const Setting& setting, int dim) {
  const ParamId tb[] = {kTBx, kTBy, kTBz};
  const ParamId cm[] = {kCMx, kCMy, kCMz};
  const ParamId bm[] = {kBMx, kBMy, kBMz};
  const std::int64_t tile = setting.get(tb[dim]) * setting.get(cm[dim]) *
                            setting.get(bm[dim]);
  return tile + 2 * spec.order;
}

ResourceUsage estimate_resources(const stencil::StencilSpec& spec,
                                 const Setting& setting,
                                 const ResourceLimits& limits) {
  return estimate_resources_core(spec.order, spec.n_inputs, spec.n_outputs,
                                 setting, limits);
}

}  // namespace cstuner::space
