#pragma once
// Constraint-propagating enumeration of the valid search space (ISSUE 7,
// docs/search-space.md). The Table I space is a ~10^13 raw cartesian product
// of which only ~1e-4 survives the ConstraintChecker; rejection sampling a
// 20k universe throws the structure away. This module decomposes the space
// exactly:
//
//   region  = one assignment of every bool/enum/temporal parameter in its
//             canonical encoding (useShared x useConstant x useStreaming x
//             SD x useRetiming x usePrefetching x TF), with per-value
//             admissibility masks for the free numeric parameters;
//   block   = region x thread-block shape (TBx, TBy, TBz);
//   leaves  = the remaining (SB, CM, BM, UF) choices inside one block.
//
// Within a region every constraint's left-hand side is monotone
// nondecreasing in every free numeric parameter (see count_block), which
// makes three things exact rather than heuristic:
//   - count_block / count_region: a dynamic program over merge/unroll
//     exponents that counts valid settings without enumerating them;
//   - BlockCursor: a resumable depth-first walk that prunes a whole subtree
//     the moment its pointwise-minimal completion violates a rule;
//   - LazyUniverse: deterministic, memory-bounded, chunked enumeration of
//     the full valid space (plus an exact-count-proportioned spread sample),
//     bit-identical across ThreadPool worker counts.
//
// The analysis layer (analysis/propagate.hpp) builds proofs on top of these
// regions; this file stays self-sufficient inside cstuner_space.

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "space/search_space.hpp"

namespace cstuner::space {

/// One case-split region: every bool/enum/temporal parameter pinned to a
/// concrete value, numeric parameters free under a per-value bitmask over
/// the parameter's sorted value list (bit i = values[i] admitted).
struct EnumRegion {
  /// pinned[p] == 0 means parameter p is free in this region.
  std::array<std::int64_t, kParamCount> pinned{};
  /// Free parameters only; pinned parameters carry mask 0.
  std::array<std::uint64_t, kParamCount> masks{};
  bool streaming = false;
  /// 0-based streaming dimension; -1 when not streaming.
  int sd = -1;

  bool is_free(ParamId id) const {
    return pinned[static_cast<std::size_t>(id)] == 0;
  }
  /// "useShared=on useStreaming=on SD=2 ..." for diagnostics.
  std::string label() const;
};

/// All canonical regions of the space in deterministic order (nested loops
/// over the pinned parameters in ParamId order). Combinations the canonical
/// encoding forbids — SD/SB/prefetching without streaming (rule 2), TF > 1
/// without a single-grid streaming pipeline (rule 10) — are not generated;
/// their settings are invalid by construction. Requires every parameter
/// cardinality <= 64 (checked).
std::vector<EnumRegion> build_regions(const SearchSpace& space);

/// Exact number of valid settings in `region` with the thread-block shape
/// fixed to `tb`. Exact because, with the flags pinned, registers and shared
/// memory depend on the free parameters only through the per-dimension
/// merge products and the total unroll product — both powers of two — so
/// the resource rules reduce to thresholds over exponent sums that a small
/// dynamic program evaluates through estimate_resources_core itself.
std::uint64_t count_block(const SearchSpace& space, const EnumRegion& region,
                          const std::array<std::int64_t, 3>& tb);

/// Exact number of valid settings in `region` (all thread-block shapes).
std::uint64_t count_region(const SearchSpace& space, const EnumRegion& region);

/// Resumable depth-first enumeration of one block's valid settings in a
/// fixed order: SB, then per dimension d in x,y,z order (CMd, BMd, UFd);
/// streaming-dimension factors are pinned at 1 and UF_sd ranges under SB.
/// Candidate lists are pre-filtered by the support rules (coverage, UF <=
/// CM*BM, UF_sd <= SB) and every partial assignment is validated with all
/// deeper parameters at their minimum (1): monotonicity makes that check
/// both a sound subtree prune and, at the leaf, the full validity verdict.
class BlockCursor {
 public:
  BlockCursor(const SearchSpace& space, const EnumRegion& region,
              const std::array<std::int64_t, 3>& tb);

  /// Advances to the next valid setting; false when the block is exhausted.
  bool next(Setting& out);

 private:
  struct Level {
    ParamId id = kSB;
    std::vector<std::int64_t> candidates;
    std::size_t pos = 0;
  };

  void build_candidates(std::size_t level);

  const SearchSpace* space_;
  const EnumRegion* region_;
  Setting current_;
  std::vector<Level> levels_;
  /// Deepest assigned level; -1 before the first next() call.
  int depth_ = -1;
  bool done_ = false;
};

struct LazyUniverseOptions {
  /// Maximum settings handed to one for_each_chunk callback (and appended
  /// per next_chunk call).
  std::size_t chunk = 4096;
  /// Maximum settings buffered while blocks are enumerated in parallel;
  /// bounds peak memory of for_each_chunk and spread_sample.
  std::size_t window = 1 << 16;
  /// spread_sample walks at most quota*stride leaves per block; capping the
  /// stride bounds total work at ~k*stride leaf visits.
  std::uint64_t max_spread_stride = 64;
};

/// Deterministic chunked enumerator over the whole valid space. Blocks are
/// ordered region-major, thread-block shapes lexicographic by value index;
/// leaves follow BlockCursor order. The order — and therefore every chunk,
/// sample, and digest derived from it — is a pure function of the space,
/// independent of worker count (tests/test_lazy_universe.cpp).
class LazyUniverse {
 public:
  /// Builds the block decomposition and exact per-block counts (the count
  /// DP runs across `pool` when provided; counts are per-block pure
  /// functions, so parallelism cannot change them).
  explicit LazyUniverse(const SearchSpace& space,
                        LazyUniverseOptions options = {},
                        ThreadPool* pool = nullptr);
  /// Same, over externally refined regions (analysis/propagate.hpp). Masks
  /// may only have proven-dead values removed — pruning never changes the
  /// enumerated set or its order, only the work to produce it.
  LazyUniverse(const SearchSpace& space, std::vector<EnumRegion> regions,
               LazyUniverseOptions options = {}, ThreadPool* pool = nullptr);

  LazyUniverse(const LazyUniverse&) = delete;
  LazyUniverse& operator=(const LazyUniverse&) = delete;

  /// Exact valid-setting count (sum of the per-block counts).
  std::uint64_t valid_count() const { return total_count_; }
  std::size_t block_count() const { return blocks_.size(); }
  const std::vector<EnumRegion>& regions() const { return regions_; }
  /// Exact count of one region, summed from its blocks.
  std::uint64_t region_count(std::size_t region_index) const;

  /// Appends up to options.chunk settings in enumeration order; false once
  /// the space is exhausted (serial cursor, O(chunk) extra memory).
  bool next_chunk(std::vector<Setting>& out);
  /// Rewinds the serial cursor to the first setting.
  void reset();

  /// Streams every valid setting, in order, as chunks of at most
  /// options.chunk settings. Blocks are enumerated across the pool in
  /// windows of ~options.window buffered settings and committed in block
  /// order, so the callback sequence is bit-identical for any worker count.
  void for_each_chunk(
      const std::function<void(const std::vector<Setting>&)>& fn);

  /// Materializes the first min(limit, valid_count()) settings in order.
  std::vector<Setting> take_all(
      std::uint64_t limit = std::numeric_limits<std::uint64_t>::max());

  /// Deterministic spread sample of min(k, valid_count()) settings:
  /// per-block quotas proportional to the exact counts (largest-remainder
  /// rounding, ties to the lower block index), strided picks inside each
  /// block. No RNG involved; bit-identical across worker counts.
  ///
  /// `salt` rotates each block's strided comb by hash(salt, block) within
  /// the slack the comb is free to move in, so callers with a seed contract
  /// (SearchSpace::sample_universe) get seed-dependent — but equally
  /// spread, still RNG-free — samples. salt == 0 keeps every pick at phase
  /// zero, the digest-stable order the space-construction gate pins.
  std::vector<Setting> spread_sample(std::size_t k, std::uint64_t salt = 0);

 private:
  struct BlockRef {
    std::uint32_t region = 0;
    std::array<std::int64_t, 3> tb{1, 1, 1};
    std::uint64_t count = 0;
  };

  void build_blocks();
  /// Enumerates blocks [begin, end) into per-block vectors across the pool.
  std::vector<std::vector<Setting>> enumerate_blocks(std::size_t begin,
                                                     std::size_t end);

  const SearchSpace& space_;
  LazyUniverseOptions options_;
  ThreadPool* pool_;
  std::vector<EnumRegion> regions_;
  std::vector<BlockRef> blocks_;
  std::uint64_t total_count_ = 0;

  // Serial cursor state for next_chunk().
  std::size_t cursor_block_ = 0;
  std::optional<BlockCursor> cursor_;
};

}  // namespace cstuner::space
