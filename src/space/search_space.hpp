#pragma once
// The constrained search space for one (stencil, resource-limit) pair:
// parameter list, constraint checking, uniform valid-setting sampling, and
// candidate-universe construction (DESIGN.md §5).

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "space/constraints.hpp"

namespace cstuner::space {

class SearchSpace {
 public:
  SearchSpace(stencil::StencilSpec spec, SpaceLimits space_limits = {},
              ResourceLimits resource_limits = {});

  // The checker holds references into this object; pin the address.
  SearchSpace(const SearchSpace&) = delete;
  SearchSpace& operator=(const SearchSpace&) = delete;

  const stencil::StencilSpec& spec() const { return spec_; }
  const std::vector<Parameter>& parameters() const { return parameters_; }
  const Parameter& parameter(ParamId id) const {
    return parameters_[static_cast<std::size_t>(id)];
  }
  const ConstraintChecker& checker() const { return *checker_; }

  /// Fast validity check; optionally hands back the rule-8 resource
  /// estimate so hot-path callers don't recompute it (constraints.hpp).
  bool is_valid(const Setting& setting,
                ResourceUsage* usage_out = nullptr) const {
    return checker_->is_valid(setting, usage_out);
  }

  /// One independently uniform draw per parameter, canonicalized; the result
  /// may still violate cross-parameter constraints.
  Setting random_setting(Rng& rng) const;

  /// Rejection-samples until a valid setting is found.
  Setting random_valid(Rng& rng, std::size_t max_tries = 100000) const;

  /// `count` distinct valid settings. Built by exact lazy enumeration
  /// (space::LazyUniverse): a valid space no larger than `count` is
  /// returned whole, a larger one as a count-proportioned spread sample
  /// whose phase is salted from `rng` — seed-dependent but rejection-free
  /// and bit-identical across worker counts. Consumes exactly one RNG draw.
  /// Spaces the enumerator cannot decompose fall back to rejection
  /// sampling, bounded by `max_tries_factor * count` attempts.
  std::vector<Setting> sample_universe(Rng& rng, std::size_t count,
                                       std::size_t max_tries_factor = 64) const;

  /// Up to `count` distinct valid settings drawn with the constructive
  /// sampler (random_setting + rejection). Unlike sample_universe this is
  /// per-parameter balanced rather than proportional to region mass, which
  /// is what model training wants: a proportional sample at small `count`
  /// collapses onto the few largest enumeration blocks and leaves flags and
  /// values too unbalanced to fit (tuner::collect_dataset).
  std::vector<Setting> sample_constructive(
      Rng& rng, std::size_t count, std::size_t max_tries_factor = 64) const;

  /// log10 of the unconstrained cartesian product size (Table I scale).
  double log10_cartesian_size() const;

  /// Raw parameter values as doubles (all >= 1), the PMNF feature encoding.
  static std::vector<double> to_feature_row(const Setting& setting);

  /// log2 of numeric values, raw bool/enum values — the CV feature encoding
  /// the paper uses so correlation comparisons are fair across parameters.
  static double cv_encoded(ParamId id, std::int64_t value);

 private:
  stencil::StencilSpec spec_;
  SpaceLimits space_limits_;
  std::vector<Parameter> parameters_;
  std::unique_ptr<ConstraintChecker> checker_;
};

}  // namespace cstuner::space
