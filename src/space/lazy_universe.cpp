#include "space/lazy_universe.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/math_util.hpp"
#include "common/rng.hpp"

namespace cstuner::space {

namespace {

constexpr std::size_t idx(ParamId id) { return static_cast<std::size_t>(id); }

constexpr ParamId kTbIds[3] = {kTBx, kTBy, kTBz};
constexpr ParamId kCmIds[3] = {kCMx, kCMy, kCMz};
constexpr ParamId kBmIds[3] = {kBMx, kBMy, kBMz};
constexpr ParamId kUfIds[3] = {kUFx, kUFy, kUFz};

std::uint64_t full_mask(const Parameter& param) {
  const std::size_t n = param.values.size();
  CSTUNER_CHECK_MSG(n <= 64,
                    "symbolic space engine needs <= 64 values per parameter");
  return n == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

std::vector<std::int64_t> masked_values(const Parameter& param,
                                        std::uint64_t mask) {
  std::vector<std::int64_t> out;
  for (std::size_t i = 0; i < param.values.size(); ++i) {
    if (((mask >> i) & 1U) != 0) out.push_back(param.values[i]);
  }
  return out;
}

std::int64_t grid_extent(const stencil::StencilSpec& spec, int dim) {
  return static_cast<std::int64_t>(spec.grid[static_cast<std::size_t>(dim)]);
}

/// Polynomial over the total unroll exponent: c[e] = number of parameter
/// combinations whose unroll factors multiply to 2^e.
struct UePoly {
  std::vector<std::uint64_t> c;

  void bump(std::size_t exponent, std::uint64_t by) {
    if (c.size() <= exponent) c.resize(exponent + 1, 0);
    c[exponent] += by;
  }
  UePoly times(const UePoly& other) const {
    UePoly out;
    if (c.empty() || other.c.empty()) return out;
    out.c.assign(c.size() + other.c.size() - 1, 0);
    for (std::size_t i = 0; i < c.size(); ++i) {
      if (c[i] == 0) continue;
      for (std::size_t j = 0; j < other.c.size(); ++j) {
        out.c[i + j] += c[i] * other.c[j];
      }
    }
    return out;
  }
  std::uint64_t sum_up_to(int max_exponent) const {
    if (max_exponent < 0) return 0;
    std::uint64_t total = 0;
    const std::size_t hi =
        std::min(c.size(), static_cast<std::size_t>(max_exponent) + 1);
    for (std::size_t e = 0; e < hi; ++e) total += c[e];
    return total;
  }
  int max_exponent() const { return static_cast<int>(c.size()) - 1; }
};

/// One admissible per-dimension merge exponent: CM*BM = 2^me, with the
/// shared-memory tile extent that exponent implies and the distribution of
/// unroll exponents available under it.
struct MeEntry {
  int me = 0;
  std::int64_t ext = 0;  ///< TB*2^me + 2*order (rule-9 tile extent)
  UePoly ue;
};

struct DimTable {
  std::vector<MeEntry> entries;  ///< sorted by me ascending
};

/// Joint distribution over (total merge exponent, total unroll exponent).
struct MeUeTable {
  /// c[me][ue]; empty outer vector = zero function.
  std::vector<std::vector<std::uint64_t>> c;

  static MeUeTable unit() {
    MeUeTable t;
    t.c.assign(1, std::vector<std::uint64_t>{1});
    return t;
  }
  MeUeTable times(const MeUeTable& other) const {
    MeUeTable out;
    if (c.empty() || other.c.empty()) return out;
    std::size_t ue_a = 0;
    std::size_t ue_b = 0;
    for (const auto& row : c) ue_a = std::max(ue_a, row.size());
    for (const auto& row : other.c) ue_b = std::max(ue_b, row.size());
    if (ue_a == 0 || ue_b == 0) return out;
    out.c.assign(c.size() + other.c.size() - 1,
                 std::vector<std::uint64_t>(ue_a + ue_b - 1, 0));
    for (std::size_t ma = 0; ma < c.size(); ++ma) {
      for (std::size_t ua = 0; ua < c[ma].size(); ++ua) {
        const std::uint64_t v = c[ma][ua];
        if (v == 0) continue;
        for (std::size_t mb = 0; mb < other.c.size(); ++mb) {
          for (std::size_t ub = 0; ub < other.c[mb].size(); ++ub) {
            out.c[ma + mb][ua + ub] += v * other.c[mb][ub];
          }
        }
      }
    }
    return out;
  }
};

MeUeTable table_of_dim(const DimTable& dim) {
  MeUeTable t;
  int max_me = 0;
  for (const MeEntry& e : dim.entries) max_me = std::max(max_me, e.me);
  t.c.assign(static_cast<std::size_t>(max_me) + 1, {});
  for (const MeEntry& e : dim.entries) {
    t.c[static_cast<std::size_t>(e.me)] = e.ue.c;
  }
  return t;
}

/// The context one count_block call works in: pinned flags, thread-block
/// shape, resource thresholds.
struct BlockContext {
  const SearchSpace* space = nullptr;
  const EnumRegion* region = nullptr;
  std::array<std::int64_t, 3> tb{1, 1, 1};
  std::int64_t threads = 1;
  bool shared = false;
  /// Upper bound on the product of per-dimension tile extents implied by
  /// rule 9, with the streaming-plane factor folded in; max() when shared
  /// memory is off.
  std::int64_t ext_cap = std::numeric_limits<std::int64_t>::max();

  /// Exact register verdict for total merge exponent `me` and total unroll
  /// exponent `ue` — evaluated through estimate_resources_core itself on a
  /// representative setting (the model reads the free numeric parameters
  /// only through their products), so the DP and is_valid share one body.
  bool regs_ok(int me, int ue) const {
    const auto& spec = space->spec();
    const auto& limits = space->checker().limits();
    Setting probe;
    for (std::size_t p = 0; p < kParamCount; ++p) {
      const std::int64_t pin = region->pinned[p];
      if (pin != 0) probe.set(static_cast<ParamId>(p), pin);
    }
    probe.set(kCMx, std::int64_t{1} << me);
    probe.set(kUFx, std::int64_t{1} << ue);
    const ResourceUsage usage = estimate_resources_core(
        spec.order, spec.n_inputs, spec.n_outputs, probe, limits);
    if (usage.spilled) return false;
    return block_registers(threads, usage.registers_per_thread) <=
           limits.max_registers_per_block;
  }
};

BlockContext make_context(const SearchSpace& space, const EnumRegion& region,
                          const std::array<std::int64_t, 3>& tb) {
  BlockContext ctx;
  ctx.space = &space;
  ctx.region = &region;
  ctx.tb = tb;
  ctx.threads = tb[0] * tb[1] * tb[2];
  ctx.shared = region.pinned[idx(kUseShared)] == kOn;
  if (ctx.shared) {
    const auto& spec = space.spec();
    const auto& limits = space.checker().limits();
    const std::int64_t staged =
        std::min<std::int64_t>(spec.n_inputs, 2);
    std::int64_t plane_factor = 1;
    if (region.streaming) {
      const std::int64_t prefetch =
          region.pinned[idx(kUsePrefetching)] == kOn ? 1 : 0;
      plane_factor = (2 * spec.order + 1 + prefetch) *
                     region.pinned[idx(kTemporal)];
    }
    ctx.ext_cap = limits.max_smem_per_block / (8 * staged * plane_factor);
  }
  return ctx;
}

/// Builds the (me, ext, unroll distribution) table of one non-streaming
/// dimension under the region masks, rules 3 and 7 applied exactly.
DimTable build_dim_table(const BlockContext& ctx, int dim) {
  const SearchSpace& space = *ctx.space;
  const EnumRegion& region = *ctx.region;
  const std::int64_t grid = grid_extent(space.spec(), dim);
  const int order = space.spec().order;
  const ParamId cm_id = kCmIds[dim];
  const ParamId bm_id = kBmIds[dim];
  const ParamId uf_id = kUfIds[dim];
  const auto cms =
      masked_values(space.parameter(cm_id), region.masks[idx(cm_id)]);
  const auto bms =
      masked_values(space.parameter(bm_id), region.masks[idx(bm_id)]);
  const auto ufs =
      masked_values(space.parameter(uf_id), region.masks[idx(uf_id)]);

  std::vector<UePoly> by_me;
  for (const std::int64_t cm : cms) {
    for (const std::int64_t bm : bms) {
      const std::int64_t prod = cm * bm;
      if (ctx.tb[static_cast<std::size_t>(dim)] * prod > grid) continue;
      const auto me =
          static_cast<std::size_t>(ilog2(static_cast<std::uint64_t>(prod)));
      if (by_me.size() <= me) by_me.resize(me + 1);
      for (const std::int64_t uf : ufs) {
        if (uf > prod) break;  // values ascending
        by_me[me].bump(
            static_cast<std::size_t>(ilog2(static_cast<std::uint64_t>(uf))),
            1);
      }
    }
  }
  DimTable table;
  for (std::size_t me = 0; me < by_me.size(); ++me) {
    if (by_me[me].c.empty()) continue;
    MeEntry entry;
    entry.me = static_cast<int>(me);
    entry.ext = ctx.tb[static_cast<std::size_t>(dim)] *
                    (std::int64_t{1} << me) +
                2 * order;
    entry.ue = std::move(by_me[me]);
    table.entries.push_back(std::move(entry));
  }
  return table;
}

/// Unroll distribution of the streaming pseudo-dimension: every admissible
/// (UF_sd, SB) pair under rules 5 and 6, keyed by the UF_sd exponent. The
/// streaming dimension contributes no tile extent (its shared-memory planes
/// are folded into ext_cap) and no merge exponent.
UePoly build_streaming_poly(const BlockContext& ctx) {
  const SearchSpace& space = *ctx.space;
  const EnumRegion& region = *ctx.region;
  const std::int64_t sgrid = grid_extent(space.spec(), region.sd);
  const ParamId uf_id = kUfIds[region.sd];
  const auto ufs =
      masked_values(space.parameter(uf_id), region.masks[idx(uf_id)]);
  const auto sbs =
      masked_values(space.parameter(kSB), region.masks[idx(kSB)]);
  UePoly poly;
  for (const std::int64_t uf : ufs) {
    std::uint64_t supports = 0;
    for (const std::int64_t sb : sbs) {
      if (sb > sgrid) break;  // ascending; rule 5
      if (sb >= uf) ++supports;  // rule 6
    }
    if (supports > 0) {
      poly.bump(
          static_cast<std::size_t>(ilog2(static_cast<std::uint64_t>(uf))),
          supports);
    }
  }
  return poly;
}

/// Largest admissible total unroll exponent per total merge exponent
/// (-1 = none). Registers are monotone in both exponents, so the frontier
/// is computed with a single descending scan.
std::vector<int> build_max_ue(const BlockContext& ctx, int me_max,
                              int ue_max) {
  std::vector<int> max_ue(static_cast<std::size_t>(me_max) + 1, -1);
  int cur = ue_max;
  for (int me = 0; me <= me_max; ++me) {
    while (cur >= 0 && !ctx.regs_ok(me, cur)) --cur;
    max_ue[static_cast<std::size_t>(me)] = cur;
    if (cur < 0) break;  // larger merges only get worse
  }
  return max_ue;
}

/// Shared-memory-free count: rule 9 never binds, so the per-dimension
/// tables collapse into one joint (me, ue) distribution and the register
/// frontier is summed over it.
std::uint64_t count_without_smem(const std::vector<DimTable>& dims,
                                 const UePoly& pseudo,
                                 const std::vector<int>& max_ue) {
  MeUeTable joint = MeUeTable::unit();
  for (const DimTable& dim : dims) joint = joint.times(table_of_dim(dim));
  {
    MeUeTable p;
    p.c.assign(1, pseudo.c);
    joint = joint.times(p);
  }
  std::uint64_t total = 0;
  for (std::size_t me = 0; me < joint.c.size(); ++me) {
    if (me >= max_ue.size()) break;
    const int cap = max_ue[me];
    if (cap < 0) continue;
    const auto& row = joint.c[me];
    const std::size_t hi =
        std::min(row.size(), static_cast<std::size_t>(cap) + 1);
    for (std::size_t ue = 0; ue < hi; ++ue) total += row[ue];
  }
  return total;
}

/// Shared-memory-bound count: walk the per-dimension merge exponents with
/// the running tile-extent product, pruning as soon as it exceeds ext_cap
/// (extents grow with me, so the walk breaks early on sorted entries).
std::uint64_t count_with_smem(const BlockContext& ctx,
                              const std::vector<DimTable>& dims,
                              const UePoly& pseudo,
                              const std::vector<int>& max_ue) {
  std::uint64_t total = 0;
  struct Frame {
    std::int64_t ext_prod = 1;
    int me_sum = 0;
    UePoly poly;
  };
  Frame root;
  root.poly = pseudo;
  const std::function<void(std::size_t, const Frame&)> descend =
      [&](std::size_t level, const Frame& frame) {
        if (level == dims.size()) {
          const auto me = static_cast<std::size_t>(frame.me_sum);
          if (me < max_ue.size()) total += frame.poly.sum_up_to(max_ue[me]);
          return;
        }
        for (const MeEntry& entry : dims[level].entries) {
          if (frame.ext_prod > ctx.ext_cap / entry.ext) break;  // rule 9
          Frame next;
          next.ext_prod = frame.ext_prod * entry.ext;
          next.me_sum = frame.me_sum + entry.me;
          next.poly = frame.poly.times(entry.ue);
          descend(level + 1, next);
        }
      };
  descend(0, root);
  return total;
}

/// Invokes fn(tb) for every admissible thread-block shape of the region in
/// canonical order (lexicographic by value index, rule 1 applied).
template <typename Fn>
void for_each_tb(const SearchSpace& space, const EnumRegion& region,
                 Fn&& fn) {
  const std::int64_t max_threads =
      space.checker().limits().max_threads_per_block;
  std::array<std::vector<std::int64_t>, 3> tbs;
  for (int d = 0; d < 3; ++d) {
    const ParamId id = kTbIds[d];
    const std::size_t p = idx(id);
    if (region.pinned[p] != 0) {
      tbs[static_cast<std::size_t>(d)] = {region.pinned[p]};
    } else {
      tbs[static_cast<std::size_t>(d)] =
          masked_values(space.parameter(id), region.masks[p]);
    }
  }
  for (const std::int64_t x : tbs[0]) {
    if (x > max_threads) break;
    for (const std::int64_t y : tbs[1]) {
      if (x * y > max_threads) break;
      for (const std::int64_t z : tbs[2]) {
        if (x * y * z > max_threads) break;
        fn(std::array<std::int64_t, 3>{x, y, z});
      }
    }
  }
}

}  // namespace

std::string EnumRegion::label() const {
  std::ostringstream os;
  bool first = true;
  for (const ParamId id : {kUseShared, kUseConstant, kUseStreaming, kSD,
                           kUseRetiming, kUsePrefetching, kTemporal}) {
    const std::int64_t v = pinned[idx(id)];
    if (v == 0) continue;
    if (!first) os << ' ';
    first = false;
    os << param_name(id) << '=';
    if (id == kSD || is_numeric(id)) {
      os << v;
    } else {
      os << (v == kOn ? "on" : "off");
    }
  }
  return os.str();
}

std::vector<EnumRegion> build_regions(const SearchSpace& space) {
  const auto& params = space.parameters();
  for (const Parameter& p : params) {
    (void)full_mask(p);  // cardinality precondition
  }
  const auto& spec = space.spec();
  const bool temporal_ok = spec.n_inputs == 1 && spec.n_outputs == 1;
  const std::vector<std::int64_t> one{1};
  const std::vector<std::int64_t> off{kOff};

  std::vector<EnumRegion> regions;
  const auto& shared_vals = params[idx(kUseShared)].values;
  const auto& constant_vals = params[idx(kUseConstant)].values;
  const auto& streaming_vals = params[idx(kUseStreaming)].values;
  const auto& sd_vals = params[idx(kSD)].values;
  const auto& retiming_vals = params[idx(kUseRetiming)].values;
  const auto& prefetch_vals = params[idx(kUsePrefetching)].values;
  const auto& tf_vals = params[idx(kTemporal)].values;

  for (const std::int64_t shared : shared_vals) {
    for (const std::int64_t constant : constant_vals) {
      for (const std::int64_t streaming : streaming_vals) {
        const bool is_streaming = streaming == kOn;
        // Rule 2: SD and prefetching collapse without streaming.
        for (const std::int64_t sd : is_streaming ? sd_vals : one) {
          for (const std::int64_t retiming : retiming_vals) {
            for (const std::int64_t prefetch :
                 is_streaming ? prefetch_vals : off) {
              for (const std::int64_t tf : tf_vals) {
                // Rule 10: temporal blocking needs a single-grid
                // streaming pipeline.
                if (tf > 1 && (!is_streaming || !temporal_ok)) continue;
                EnumRegion r;
                r.streaming = is_streaming;
                r.sd = is_streaming ? static_cast<int>(sd) - 1 : -1;
                auto pin = [&r](ParamId id, std::int64_t value) {
                  r.pinned[idx(id)] = value;
                };
                pin(kUseShared, shared);
                pin(kUseConstant, constant);
                pin(kUseStreaming, streaming);
                pin(kSD, sd);
                pin(kUseRetiming, retiming);
                pin(kUsePrefetching, prefetch);
                pin(kTemporal, tf);
                if (is_streaming) {
                  // Rule 4: 2.5-D blocking along the streaming dimension.
                  pin(kTbIds[r.sd], 1);
                  pin(kCmIds[r.sd], 1);
                  pin(kBmIds[r.sd], 1);
                } else {
                  pin(kSB, 1);  // rule 2
                }
                for (std::size_t p = 0; p < kParamCount; ++p) {
                  if (r.pinned[p] == 0) r.masks[p] = full_mask(params[p]);
                }
                regions.push_back(std::move(r));
              }
            }
          }
        }
      }
    }
  }
  return regions;
}

std::uint64_t count_block(const SearchSpace& space, const EnumRegion& region,
                          const std::array<std::int64_t, 3>& tb) {
  const BlockContext ctx = make_context(space, region, tb);
  if (ctx.threads > space.checker().limits().max_threads_per_block) return 0;

  std::vector<DimTable> dims;
  for (int d = 0; d < 3; ++d) {
    if (region.streaming && d == region.sd) continue;
    DimTable table = build_dim_table(ctx, d);
    if (table.entries.empty()) return 0;
    dims.push_back(std::move(table));
  }
  UePoly pseudo;
  if (region.streaming) {
    pseudo = build_streaming_poly(ctx);
    if (pseudo.c.empty()) return 0;
  } else {
    pseudo.c = {1};
  }

  int me_max = 0;
  int ue_max = pseudo.max_exponent();
  for (const DimTable& dim : dims) {
    int dim_me = 0;
    int dim_ue = 0;
    for (const MeEntry& entry : dim.entries) {
      dim_me = std::max(dim_me, entry.me);
      dim_ue = std::max(dim_ue, entry.ue.max_exponent());
    }
    me_max += dim_me;
    ue_max += dim_ue;
  }
  const std::vector<int> max_ue = build_max_ue(ctx, me_max, ue_max);

  if (!ctx.shared) return count_without_smem(dims, pseudo, max_ue);
  return count_with_smem(ctx, dims, pseudo, max_ue);
}

std::uint64_t count_region(const SearchSpace& space,
                           const EnumRegion& region) {
  std::uint64_t total = 0;
  for_each_tb(space, region, [&](const std::array<std::int64_t, 3>& tb) {
    total += count_block(space, region, tb);
  });
  return total;
}

// --- BlockCursor -----------------------------------------------------------

BlockCursor::BlockCursor(const SearchSpace& space, const EnumRegion& region,
                         const std::array<std::int64_t, 3>& tb)
    : space_(&space), region_(&region) {
  for (std::size_t p = 0; p < kParamCount; ++p) {
    if (region.pinned[p] != 0) {
      current_.set(static_cast<ParamId>(p), region.pinned[p]);
    }
  }
  for (int d = 0; d < 3; ++d) {
    current_.set(kTbIds[d], tb[static_cast<std::size_t>(d)]);
  }
  if (region.streaming) levels_.push_back({kSB, {}, 0});
  for (int d = 0; d < 3; ++d) {
    if (region.streaming && d == region.sd) {
      levels_.push_back({kUfIds[d], {}, 0});
    } else {
      levels_.push_back({kCmIds[d], {}, 0});
      levels_.push_back({kBmIds[d], {}, 0});
      levels_.push_back({kUfIds[d], {}, 0});
    }
  }
}

void BlockCursor::build_candidates(std::size_t level) {
  Level& lv = levels_[level];
  lv.candidates.clear();
  lv.pos = 0;
  const Parameter& param = space_->parameter(lv.id);
  const std::uint64_t mask = region_->masks[idx(lv.id)];
  const auto& spec = space_->spec();
  std::int64_t cap = std::numeric_limits<std::int64_t>::max();
  const int d = param_dimension(lv.id);
  if (lv.id == kSB) {
    cap = grid_extent(spec, region_->sd);  // rule 5
  } else if (lv.id == kCmIds[d]) {
    // Rule 3: TB*CM*BM <= grid, with BM still at its minimum of 1.
    cap = grid_extent(spec, d) / current_.get(kTbIds[d]);
  } else if (lv.id == kBmIds[d]) {
    cap = grid_extent(spec, d) /
          (current_.get(kTbIds[d]) * current_.get(kCmIds[d]));
  } else if (region_->streaming && d == region_->sd) {
    cap = current_.get(kSB);  // rule 6
  } else {
    cap = current_.get(kCmIds[d]) * current_.get(kBmIds[d]);  // rule 7
  }
  for (std::size_t i = 0; i < param.values.size(); ++i) {
    if (((mask >> i) & 1U) == 0) continue;
    if (param.values[i] > cap) break;  // ascending
    lv.candidates.push_back(param.values[i]);
  }
}

bool BlockCursor::next(Setting& out) {
  if (done_) return false;
  int i = depth_;
  bool descending = false;
  if (i < 0) {
    i = 0;
    build_candidates(0);
    descending = true;
  }
  while (true) {
    Level& lv = levels_[static_cast<std::size_t>(i)];
    if (!descending) ++lv.pos;
    descending = false;
    bool placed = false;
    if (lv.pos < lv.candidates.size()) {
      current_.set(lv.id, lv.candidates[lv.pos]);
      // Pointwise-minimal completion: all deeper parameters sit at 1, so a
      // violated rule here (all monotone in this parameter within the
      // region) rules out this and every larger candidate.
      if (space_->is_valid(current_)) {
        placed = true;
      } else {
        lv.pos = lv.candidates.size();
      }
    }
    if (!placed) {
      current_.set(lv.id, 1);
      if (i == 0) {
        done_ = true;
        return false;
      }
      --i;
      continue;
    }
    if (static_cast<std::size_t>(i) + 1 == levels_.size()) {
      depth_ = i;
      out = current_;
      return true;
    }
    ++i;
    build_candidates(static_cast<std::size_t>(i));
    descending = true;
  }
}

// --- LazyUniverse ----------------------------------------------------------

LazyUniverse::LazyUniverse(const SearchSpace& space,
                           LazyUniverseOptions options, ThreadPool* pool)
    : LazyUniverse(space, build_regions(space), options, pool) {}

LazyUniverse::LazyUniverse(const SearchSpace& space,
                           std::vector<EnumRegion> regions,
                           LazyUniverseOptions options, ThreadPool* pool)
    : space_(space),
      options_(options),
      pool_(pool),
      regions_(std::move(regions)) {
  CSTUNER_CHECK(options_.chunk > 0);
  build_blocks();
}

void LazyUniverse::build_blocks() {
  for (std::uint32_t r = 0; r < regions_.size(); ++r) {
    for_each_tb(space_, regions_[r],
                [&](const std::array<std::int64_t, 3>& tb) {
                  BlockRef block;
                  block.region = r;
                  block.tb = tb;
                  blocks_.push_back(block);
                });
  }
  const auto count_one = [this](std::size_t i) {
    blocks_[i].count =
        count_block(space_, regions_[blocks_[i].region], blocks_[i].tb);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(blocks_.size(), count_one);
  } else {
    for (std::size_t i = 0; i < blocks_.size(); ++i) count_one(i);
  }
  total_count_ = 0;
  for (const BlockRef& block : blocks_) total_count_ += block.count;
}

std::uint64_t LazyUniverse::region_count(std::size_t region_index) const {
  std::uint64_t total = 0;
  for (const BlockRef& block : blocks_) {
    if (block.region == region_index) total += block.count;
  }
  return total;
}

bool LazyUniverse::next_chunk(std::vector<Setting>& out) {
  std::size_t appended = 0;
  while (appended < options_.chunk) {
    if (!cursor_.has_value()) {
      while (cursor_block_ < blocks_.size() &&
             blocks_[cursor_block_].count == 0) {
        ++cursor_block_;
      }
      if (cursor_block_ >= blocks_.size()) break;
      cursor_.emplace(space_, regions_[blocks_[cursor_block_].region],
                      blocks_[cursor_block_].tb);
    }
    Setting s;
    if (cursor_->next(s)) {
      out.push_back(s);
      ++appended;
    } else {
      cursor_.reset();
      ++cursor_block_;
    }
  }
  return appended > 0;
}

void LazyUniverse::reset() {
  cursor_block_ = 0;
  cursor_.reset();
}

std::vector<std::vector<Setting>> LazyUniverse::enumerate_blocks(
    std::size_t begin, std::size_t end) {
  std::vector<std::vector<Setting>> out(end - begin);
  const auto body = [&](std::size_t i) {
    const BlockRef& block = blocks_[begin + i];
    if (block.count == 0) return;
    out[i].reserve(static_cast<std::size_t>(block.count));
    BlockCursor cursor(space_, regions_[block.region], block.tb);
    Setting s;
    while (cursor.next(s)) out[i].push_back(s);
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(out.size(), body);
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) body(i);
  }
  return out;
}

void LazyUniverse::for_each_chunk(
    const std::function<void(const std::vector<Setting>&)>& fn) {
  std::vector<Setting> buffer;
  buffer.reserve(options_.chunk);
  const auto push = [&](const Setting& s) {
    buffer.push_back(s);
    if (buffer.size() == options_.chunk) {
      fn(buffer);
      buffer.clear();
    }
  };
  std::size_t b = 0;
  while (b < blocks_.size()) {
    if (blocks_[b].count == 0) {
      ++b;
      continue;
    }
    if (blocks_[b].count > options_.window) {
      // A single block larger than the window: walk it serially so memory
      // stays bounded by the chunk size.
      BlockCursor cursor(space_, regions_[blocks_[b].region], blocks_[b].tb);
      Setting s;
      while (cursor.next(s)) push(s);
      ++b;
      continue;
    }
    std::size_t e = b;
    std::uint64_t buffered = 0;
    while (e < blocks_.size() && blocks_[e].count <= options_.window &&
           buffered + blocks_[e].count <= options_.window) {
      buffered += blocks_[e].count;
      ++e;
    }
    const auto per_block = enumerate_blocks(b, e);
    for (const auto& settings : per_block) {
      for (const Setting& s : settings) push(s);
    }
    b = e;
  }
  if (!buffer.empty()) fn(buffer);
}

std::vector<Setting> LazyUniverse::take_all(std::uint64_t limit) {
  std::vector<Setting> out;
  if (limit >= total_count_) {
    out.reserve(static_cast<std::size_t>(total_count_));
    for_each_chunk([&](const std::vector<Setting>& chunk) {
      out.insert(out.end(), chunk.begin(), chunk.end());
    });
    return out;
  }
  out.reserve(static_cast<std::size_t>(limit));
  reset();
  while (out.size() < limit && next_chunk(out)) {
  }
  if (out.size() > limit) out.resize(static_cast<std::size_t>(limit));
  reset();
  return out;
}

std::vector<Setting> LazyUniverse::spread_sample(std::size_t k,
                                                 std::uint64_t salt) {
  if (k == 0 || total_count_ == 0) return {};
  if (k >= total_count_) return take_all();

  // Largest-remainder quotas proportional to the exact block counts.
  std::vector<std::uint64_t> quota(blocks_.size(), 0);
  std::vector<std::pair<std::uint64_t, std::size_t>> remainders;
  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const unsigned __int128 scaled =
        static_cast<unsigned __int128>(k) * blocks_[i].count;
    quota[i] = static_cast<std::uint64_t>(scaled / total_count_);
    const auto rem = static_cast<std::uint64_t>(scaled % total_count_);
    assigned += quota[i];
    if (rem > 0) remainders.emplace_back(rem, i);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  for (std::size_t j = 0; assigned < k && j < remainders.size();
       ++j, ++assigned) {
    ++quota[remainders[j].second];
  }

  std::vector<std::vector<Setting>> picked(blocks_.size());
  const auto body = [&](std::size_t i) {
    const std::uint64_t q = quota[i];
    if (q == 0) return;
    std::uint64_t stride =
        std::min(blocks_[i].count / q, options_.max_spread_stride);
    if (stride == 0) stride = 1;
    std::uint64_t offset = 0;
    if (salt != 0) {
      // Deterministic per-block phase: the comb of q picks at spacing
      // `stride` fits anywhere in [0, count - (q-1)*stride); hashing
      // (salt, block) picks the phase, so different salts see different —
      // but equally spread — settings without any rejection or RNG state.
      const std::uint64_t slack = blocks_[i].count - (q - 1) * stride;
      offset = hash_combine(salt, static_cast<std::uint64_t>(i)) % slack;
    }
    picked[i].reserve(static_cast<std::size_t>(q));
    BlockCursor cursor(space_, regions_[blocks_[i].region], blocks_[i].tb);
    Setting s;
    std::uint64_t pos = 0;
    std::uint64_t next_pick = offset;
    while (picked[i].size() < q && cursor.next(s)) {
      if (pos == next_pick) {
        picked[i].push_back(s);
        next_pick += stride;
      }
      ++pos;
    }
  };
  if (pool_ != nullptr) {
    pool_->parallel_for(picked.size(), body);
  } else {
    for (std::size_t i = 0; i < picked.size(); ++i) body(i);
  }

  std::vector<Setting> out;
  out.reserve(k);
  for (const auto& settings : picked) {
    out.insert(out.end(), settings.begin(), settings.end());
  }
  return out;
}

}  // namespace cstuner::space
