#pragma once
// Explicit and implicit constraint checking (§IV-B). Only settings passing
// every rule are explored during auto-tuning; the checker reports the first
// violated rule for diagnostics.
//
// Two entry points share the rule set: violation() builds a diagnostic
// string for the first broken rule, and is_valid() answers the same
// question as a branch-only fast path (admissibility via precomputed
// per-parameter bitmaps, no allocation) — it sits on the evaluator's
// per-setting hot path (docs/performance.md).

#include <array>
#include <optional>
#include <string>

#include "space/resource_model.hpp"
#include "space/setting.hpp"

namespace cstuner::space {

class ConstraintChecker {
 public:
  ConstraintChecker(const stencil::StencilSpec& spec,
                    const std::vector<Parameter>& parameters,
                    const ResourceLimits& limits = {});

  /// nullopt when valid; otherwise the first violated rule.
  std::optional<std::string> violation(const Setting& setting) const;

  /// Same verdict as !violation(setting).has_value(), without building
  /// diagnostics. When `usage_out` is non-null and the setting is valid,
  /// the rule-8 resource estimate is stored there so hot-path callers can
  /// reuse it instead of recomputing.
  bool is_valid(const Setting& setting,
                ResourceUsage* usage_out = nullptr) const;

  /// Forces the canonical encoding of inactive optimizations: with streaming
  /// disabled SD/SB collapse to 1 and prefetching (which overlaps streaming
  /// plane loads) is off. This removes aliased duplicate settings from the
  /// space, mirroring the paper's "SD and SB are only valid when enabling
  /// streaming".
  Setting canonicalized(Setting setting) const;

  /// Deterministically repairs a setting into a valid one by lowering the
  /// offending factors (thread-block dims, merge/unroll factors, SB; shared
  /// memory is disabled as a last resort). Used by csTuner's per-group
  /// search, where a group's value tuple is grafted onto a base setting and
  /// the combination may violate cross-group constraints. Values only ever
  /// move toward 1, so repair always terminates and preserves admissibility.
  Setting repaired(Setting setting) const;

  const ResourceLimits& limits() const { return limits_; }

 private:
  /// Dense admissible-value bitmap for one parameter (covers [min, max]);
  /// empty words fall back to the parameter's sorted-vector lookup.
  struct AdmissibleBits {
    std::int64_t min = 0;
    std::int64_t max = -1;
    std::vector<std::uint64_t> words;

    bool contains(std::int64_t v, const Parameter& param) const {
      if (words.empty()) return param.contains(v);
      if (v < min || v > max) return false;
      const auto off = static_cast<std::uint64_t>(v - min);
      return (words[off >> 6] >> (off & 63)) & 1u;
    }
  };

  const stencil::StencilSpec& spec_;
  const std::vector<Parameter>& parameters_;
  ResourceLimits limits_;
  std::array<AdmissibleBits, kParamCount> admissible_;
};

}  // namespace cstuner::space
