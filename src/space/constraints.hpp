#pragma once
// Explicit and implicit constraint checking (§IV-B). Only settings passing
// every rule are explored during auto-tuning; the checker reports the first
// violated rule for diagnostics.

#include <optional>
#include <string>

#include "space/resource_model.hpp"
#include "space/setting.hpp"

namespace cstuner::space {

class ConstraintChecker {
 public:
  ConstraintChecker(const stencil::StencilSpec& spec,
                    const std::vector<Parameter>& parameters,
                    const ResourceLimits& limits = {});

  /// nullopt when valid; otherwise the first violated rule.
  std::optional<std::string> violation(const Setting& setting) const;

  bool is_valid(const Setting& setting) const {
    return !violation(setting).has_value();
  }

  /// Forces the canonical encoding of inactive optimizations: with streaming
  /// disabled SD/SB collapse to 1 and prefetching (which overlaps streaming
  /// plane loads) is off. This removes aliased duplicate settings from the
  /// space, mirroring the paper's "SD and SB are only valid when enabling
  /// streaming".
  Setting canonicalized(Setting setting) const;

  /// Deterministically repairs a setting into a valid one by lowering the
  /// offending factors (thread-block dims, merge/unroll factors, SB; shared
  /// memory is disabled as a last resort). Used by csTuner's per-group
  /// search, where a group's value tuple is grafted onto a base setting and
  /// the combination may violate cross-group constraints. Values only ever
  /// move toward 1, so repair always terminates and preserves admissibility.
  Setting repaired(Setting setting) const;

  const ResourceLimits& limits() const { return limits_; }

 private:
  const stencil::StencilSpec& spec_;
  const std::vector<Parameter>& parameters_;
  ResourceLimits limits_;
};

}  // namespace cstuner::space
