#pragma once
// The parameterized optimization space of Table I.
//
// 19 parameters: thread-block shape (TBx/TBy/TBz), shared memory, constant
// memory, streaming (+ streaming dimension SD, concurrent-streaming tile
// SB), loop unrolling (UFx/y/z), cyclic merging (CMx/y/z), block merging
// (BMx/y/z), retiming, prefetching. Bool/enum parameters are encoded from 1
// with unit stride and numeric parameters are powers of two, exactly as the
// paper prescribes so that the log2 operations in PMNF and CV computations
// are well defined.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "stencil/stencil_spec.hpp"

namespace cstuner::space {

/// Identifier of each optimization parameter (Table I order).
enum ParamId : std::size_t {
  kTBx = 0,
  kTBy,
  kTBz,
  kUseShared,
  kUseConstant,
  kUseStreaming,
  kSD,
  kSB,
  kUFx,
  kUFy,
  kUFz,
  kCMx,
  kCMy,
  kCMz,
  kBMx,
  kBMy,
  kBMz,
  kUseRetiming,
  kUsePrefetching,
  /// §VII extension: AN5D-style temporal blocking — fuse TF time steps into
  /// one kernel sweep. Off by default (single value 1), enabled through
  /// SpaceLimits::max_temporal, so the paper-faithful Table I space is the
  /// default and the extension is opt-in.
  kTemporal,
  kNumParams
};

constexpr std::size_t kParamCount = static_cast<std::size_t>(kNumParams);

/// "off"/"on" encoding for boolean optimization flags (paper encodes from 1).
constexpr std::int64_t kOff = 1;
constexpr std::int64_t kOn = 2;

enum class ParamKind { kBool, kEnum, kPow2 };

/// A single tunable parameter: its identity and admissible values.
struct Parameter {
  ParamId id = kTBx;
  std::string name;
  ParamKind kind = ParamKind::kPow2;
  std::vector<std::int64_t> values;  ///< sorted ascending

  std::size_t cardinality() const { return values.size(); }

  /// Index of `value` in `values`; throws if absent.
  std::size_t value_index(std::int64_t value) const;

  bool contains(std::int64_t value) const;
};

const char* param_name(ParamId id);

/// Whether CV/PMNF treat this parameter's values on a log2 scale
/// (numeric pow-2 parameters) or as-is (bool/enum).
bool is_numeric(ParamId id);

/// Which grid dimension (0/1/2) a per-dimension parameter refers to, or -1.
int param_dimension(ParamId id);

/// Caps applied to merge/unroll factors before resource constraints prune
/// further (the paper's Table I allows up to M_n; the implicit register
/// constraints make large factors invalid anyway).
struct SpaceLimits {
  std::int64_t max_unroll = 64;
  std::int64_t max_merge = 64;
  std::int64_t max_tb_xy = 1024;
  std::int64_t max_tb_z = 64;
  /// Temporal-blocking factor cap; 1 (default) disables the extension and
  /// reproduces the paper's Table I space exactly.
  std::int64_t max_temporal = 1;
};

/// Builds the Table I parameter list for a stencil's grid.
std::vector<Parameter> make_parameters(const stencil::StencilSpec& spec,
                                       const SpaceLimits& limits = {});

}  // namespace cstuner::space
