// Crash-consistency sweep (docs/durability.md): run a reference tune (and a
// reference serve session) against a FaultVfs, then replay the run with a
// simulated power cut armed after every k-th Vfs operation. After each cut
// the "machine" restarts and recovery must uphold the durability invariants
// the framework documents:
//
//   tune   a resumed checkpointed tune finishes bit-identical to the
//          uninterrupted reference — torn journal tails truncate, torn
//          snapshots fall back, nothing half-applied ever influences the
//          result;
//   serve  an acknowledged submit is never lost (the manifest the ack was
//          predicated on is durable), an unacknowledged one leaves no
//          adopted session, and a re-adopted session completes with the
//          reference bits.
//
// Any violation prints the cut point and exits nonzero. Every fault
// decision derives from fixed seeds, so a failing cut replays exactly.
//
//   crash_sweep [--mode tune|serve|all] [--stride N] [--budget S]
//               [--stencil NAME] [--universe N] [--seed N] [--json]

#include <bit>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/json.hpp"
#include "core/cs_tuner.hpp"
#include "gpusim/simulator.hpp"
#include "io/fault_vfs.hpp"
#include "io/vfs.hpp"
#include "serve/session_manager.hpp"
#include "space/search_space.hpp"
#include "stencil/stencils.hpp"
#include "tuner/checkpoint.hpp"
#include "tuner/evaluator.hpp"

namespace {

using namespace cstuner;

struct SweepConfig {
  std::string mode = "all";
  std::uint64_t stride = 37;
  double budget_s = 1.0;
  std::string stencil = "j3d7pt";
  std::uint64_t universe = 400;
  std::uint64_t seed = 42;
  bool json = false;
};

struct Fingerprint {
  std::string best_setting;
  std::uint64_t best_time_bits = 0;
  std::uint64_t virtual_time_bits = 0;
  std::uint64_t evaluations = 0;

  bool operator==(const Fingerprint&) const = default;
};

std::ostream& operator<<(std::ostream& os, const Fingerprint& fp) {
  return os << "{setting=" << fp.best_setting << " time_bits=0x" << std::hex
            << fp.best_time_bits << " vt_bits=0x" << fp.virtual_time_bits
            << std::dec << " evals=" << fp.evaluations << "}";
}

struct SweepOutcome {
  std::uint64_t reference_ops = 0;
  std::uint64_t cuts = 0;
  std::uint64_t violations = 0;
};

// --- tune mode -------------------------------------------------------------

/// One checkpointed tune over `vfs`. Resumes from whatever the checkpoint
/// directory durably holds — on a fresh Vfs that is a clean slate.
Fingerprint run_tune(io::Vfs& vfs, const SweepConfig& config) {
  const auto spec = stencil::make_stencil(config.stencil);
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::a100());
  tuner::Evaluator evaluator(sim, space, {}, config.seed);
  evaluator.set_fault_injection(gpusim::FaultConfig::uniform(0.2, config.seed),
                                spec.name);

  tuner::Checkpoint checkpoint("sweep/checkpoint", &vfs);
  checkpoint.set_sync_policy(tuner::Checkpoint::SyncPolicy::kEvery);
  if (checkpoint.has_journal_file()) checkpoint.load();
  evaluator.set_checkpoint(&checkpoint);

  core::CsTunerOptions options;
  options.universe_size = config.universe;
  options.dataset_size = 48;
  options.seed = config.seed;
  core::CsTuner tuner(options);
  tuner.tune(evaluator, {.max_virtual_seconds = config.budget_s});
  checkpoint.flush();
  checkpoint.write_snapshot(evaluator.serialize_state());

  Fingerprint fp;
  fp.best_setting = evaluator.best_setting()->to_string();
  fp.best_time_bits = std::bit_cast<std::uint64_t>(evaluator.best_time_ms());
  fp.virtual_time_bits =
      std::bit_cast<std::uint64_t>(evaluator.virtual_time_s());
  fp.evaluations = evaluator.unique_evaluations();
  return fp;
}

SweepOutcome sweep_tune(const SweepConfig& config) {
  SweepOutcome outcome;
  Fingerprint reference;
  {
    io::FaultVfs vfs;
    reference = run_tune(vfs, config);
    outcome.reference_ops = vfs.op_count();
  }
  std::cerr << "crash_sweep: tune reference " << reference << ", "
            << outcome.reference_ops << " vfs ops, stride " << config.stride
            << "\n";

  for (std::uint64_t cut = 1; cut <= outcome.reference_ops;
       cut += config.stride) {
    ++outcome.cuts;
    io::FaultVfs vfs;
    vfs.arm_power_cut(static_cast<std::int64_t>(cut));
    bool interrupted = false;
    Fingerprint got;
    try {
      got = run_tune(vfs, config);
    } catch (const Error&) {
      interrupted = true;
    }
    if (interrupted) {
      // Reboot and resume: the durable journal prefix replays, everything
      // lost re-measures deterministically.
      vfs.restart();
      try {
        got = run_tune(vfs, config);
      } catch (const Error& e) {
        std::cerr << "crash_sweep: VIOLATION at cut " << cut
                  << ": resume failed: " << e.what() << "\n";
        ++outcome.violations;
        continue;
      }
    }
    if (!(got == reference)) {
      std::cerr << "crash_sweep: VIOLATION at cut " << cut << ": resumed "
                << got << " != reference " << reference << "\n";
      ++outcome.violations;
    }
  }
  return outcome;
}

// --- serve mode ------------------------------------------------------------

serve::TuneRequest sweep_request(const SweepConfig& config) {
  serve::TuneRequest request;
  request.stencil = config.stencil;
  request.seed = config.seed;
  request.budget_s = config.budget_s;
  request.universe = config.universe;
  request.fault_rate = 0.2;
  return request;
}

serve::ServeOptions serve_options(io::Vfs& vfs) {
  serve::ServeOptions options;
  options.state_dir = "serve-state";
  options.warm_start = false;
  options.checkpoint_sync = tuner::Checkpoint::SyncPolicy::kEvery;
  options.vfs = &vfs;
  return options;
}

Fingerprint fingerprint_of(const serve::SessionResult& result) {
  Fingerprint fp;
  fp.best_setting = result.best_setting;
  fp.best_time_bits = result.best_time_bits;
  fp.virtual_time_bits = result.virtual_time_bits;
  fp.evaluations = result.evaluations;
  return fp;
}

SweepOutcome sweep_serve(const SweepConfig& config) {
  SweepOutcome outcome;
  Fingerprint reference;
  {
    io::FaultVfs vfs;
    serve::SessionManager manager(serve_options(vfs));
    const serve::SubmitOutcome out = manager.submit(sweep_request(config));
    if (!out.accepted) throw Error("reference submit rejected");
    const auto result = manager.result(out.id, 300.0);
    if (!result.has_value() ||
        result->state != serve::SessionState::kDone) {
      throw Error("reference serve session did not finish");
    }
    reference = fingerprint_of(*result);
    outcome.reference_ops = vfs.op_count();
  }
  std::cerr << "crash_sweep: serve reference " << reference << ", "
            << outcome.reference_ops << " vfs ops, stride " << config.stride
            << "\n";

  for (std::uint64_t cut = 1; cut <= outcome.reference_ops;
       cut += config.stride) {
    ++outcome.cuts;
    io::FaultVfs vfs;
    vfs.arm_power_cut(static_cast<std::int64_t>(cut));
    bool acked = false;
    std::uint64_t id = 0;
    try {
      serve::SessionManager manager(serve_options(vfs));
      try {
        const serve::SubmitOutcome out = manager.submit(sweep_request(config));
        acked = out.accepted;
        id = out.id;
      } catch (const Error&) {
        // The cut (or its aftermath) landed inside submit: not acked.
      }
      // Let the dispatch thread run to rest (done, or failed at the cut);
      // the manager's destructor drains whatever is left.
      if (acked) manager.result(id, 300.0);
    } catch (const Error&) {
      // The cut landed inside the manager's own construction: the daemon
      // never came up, so nothing was acknowledged.
    }
    vfs.restart();

    // Recovery: constructing the manager re-adopts every acknowledged
    // session and reruns it. This must never throw — torn manifests, torn
    // results and torn checkpoints are all expected post-crash states.
    try {
      serve::SessionManager manager(serve_options(vfs));
      const serve::ServeStats stats = manager.stats();
      const std::size_t known = stats.queued + stats.running + stats.resting;
      if (!acked) {
        if (manager.adopted() > 0) {
          std::cerr << "crash_sweep: VIOLATION at cut " << cut
                    << ": unacknowledged submit was adopted after restart\n";
          ++outcome.violations;
        }
        continue;
      }
      if (known == 0) {
        std::cerr << "crash_sweep: VIOLATION at cut " << cut
                  << ": acknowledged session lost after restart "
                  << "(manifest was not durable at ack time)\n";
        ++outcome.violations;
        continue;
      }
      const auto result = manager.result(id, 300.0);
      if (!result.has_value() ||
          result->state != serve::SessionState::kDone) {
        std::cerr << "crash_sweep: VIOLATION at cut " << cut
                  << ": re-adopted session did not finish\n";
        ++outcome.violations;
        continue;
      }
      const Fingerprint got = fingerprint_of(*result);
      if (!(got == reference)) {
        std::cerr << "crash_sweep: VIOLATION at cut " << cut
                  << ": re-adopted " << got << " != reference " << reference
                  << "\n";
        ++outcome.violations;
      }
    } catch (const Error& e) {
      std::cerr << "crash_sweep: VIOLATION at cut " << cut
                << ": recovery threw: " << e.what() << "\n";
      ++outcome.violations;
    }
  }
  return outcome;
}

// --- driver ----------------------------------------------------------------

int usage() {
  std::cerr << "usage: crash_sweep [--mode tune|serve|all] [--stride N]\n"
            << "                   [--budget S] [--stencil NAME]\n"
            << "                   [--universe N] [--seed N] [--json]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  SweepConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "crash_sweep: " << arg << " needs a value\n";
        std::exit(usage());
      }
      return argv[++i];
    };
    if (arg == "--mode") {
      config.mode = value();
    } else if (arg == "--stride") {
      config.stride = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--budget") {
      config.budget_s = std::strtod(value().c_str(), nullptr);
    } else if (arg == "--stencil") {
      config.stencil = value();
    } else if (arg == "--universe") {
      config.universe = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg == "--json") {
      config.json = true;
    } else {
      return usage();
    }
  }
  if (config.stride == 0) config.stride = 1;
  if (config.mode != "tune" && config.mode != "serve" && config.mode != "all") {
    return usage();
  }

  try {
    SweepOutcome tune, served;
    if (config.mode == "tune" || config.mode == "all") {
      tune = sweep_tune(config);
    }
    if (config.mode == "serve" || config.mode == "all") {
      served = sweep_serve(config);
    }
    const std::uint64_t violations = tune.violations + served.violations;
    if (config.json) {
      JsonWriter json;
      json.begin_object()
          .field("mode", config.mode)
          .field("stride", config.stride)
          .field("tune_ops", tune.reference_ops)
          .field("tune_cuts", tune.cuts)
          .field("serve_ops", served.reference_ops)
          .field("serve_cuts", served.cuts)
          .field("violations", violations)
          .end_object();
      std::cout << json.str() << "\n";
    }
    std::cerr << "crash_sweep: " << (tune.cuts + served.cuts)
              << " cut(s) swept, " << violations << " violation(s)\n";
    return violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "crash_sweep: fatal: " << e.what() << "\n";
    return 2;
  }
}
