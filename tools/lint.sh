#!/usr/bin/env bash
# Static lint gate: clang-tidy (bugprone-*/performance-* as errors, see
# .clang-tidy) plus a clang-format diff check. Both tools degrade gracefully
# when not installed — the script reports what it skipped and only fails on
# findings from tools that actually ran.
#
#   tools/lint.sh            # lint src/ + tools/ against build/ compile db
#   tools/lint.sh <builddir> # use another compilation database
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-${ROOT}/build}"
status=0

if [[ ! -f "${BUILD}/compile_commands.json" ]]; then
  echo "lint: no compilation database at ${BUILD}/compile_commands.json" >&2
  echo "lint: configure first: cmake -B ${BUILD} -S ${ROOT}" >&2
  exit 2
fi

mapfile -t sources < <(find "${ROOT}/src" "${ROOT}/tools" -name '*.cpp' | sort)

if command -v clang-tidy >/dev/null 2>&1; then
  echo "lint: clang-tidy over ${#sources[@]} files"
  if ! clang-tidy -p "${BUILD}" --quiet "${sources[@]}"; then
    status=1
  fi

  # Strict pass for the symbolic space engine (ISSUE 7): the repo-wide
  # config waives bugprone-narrowing-conversions, but the counting DP and
  # the propagation engine do 64-bit index/exponent arithmetic where a
  # silent truncation corrupts proofs — new code must pass it.
  strict_sources=(
    "${ROOT}/src/space/lazy_universe.cpp"
    "${ROOT}/src/analysis/domain.cpp"
    "${ROOT}/src/analysis/propagate.cpp"
  )
  echo "lint: strict clang-tidy (narrowing) over ${#strict_sources[@]} files"
  if ! clang-tidy -p "${BUILD}" --quiet \
      --checks='-*,bugprone-narrowing-conversions' \
      --warnings-as-errors='bugprone-narrowing-conversions' \
      "${strict_sources[@]}"; then
    status=1
  fi
else
  echo "lint: clang-tidy not installed; skipping tidy checks"
fi

if command -v clang-format >/dev/null 2>&1; then
  echo "lint: clang-format diff check"
  mapfile -t formatted < <(find "${ROOT}/src" "${ROOT}/tools" "${ROOT}/tests" \
    -name '*.cpp' -o -name '*.hpp' | sort)
  if ! clang-format --dry-run --Werror "${formatted[@]}"; then
    status=1
  fi
else
  echo "lint: clang-format not installed; skipping format check"
fi

exit "${status}"
