// cstuner — command-line driver for the auto-tuning framework.
//
// Subcommands:
//   list-stencils                       the Table III suite
//   inspect   <stencil>                 parameter space + constraints summary
//   profile   <stencil> [--set k=v ...] simulate one setting (time + metrics)
//   codegen   <stencil> [--set k=v ...] emit the CUDA kernel for a setting
//   dataset   <stencil> [-n N]          collect a performance dataset (CSV)
//   validate  <stencil> [--scale S]     tiled executor vs reference oracle
//   analyze   <stencil> [--set k=v ...] static analysis of generated kernels
//   tune      <stencil> [--method M] [--budget S] [--json]   run a tuner
//   tournament [stencil ...] [--budget S] [--json]  optimizer leaderboard
//   report    <current.json> --baseline <file> [--tol 10%]   bench gate
//   serve     [--port N] [--state-dir D]       tuning-as-a-service daemon
//   client    --request '<json>' [--port N]    one request to a daemon
//
// Common flags: --arch a100|v100 (default a100), --seed N. Flags accept
// both "--key value" and "--key=value".

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/propagate.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "core/grouping.hpp"
#include "cstuner.hpp"
#include "obs/obs.hpp"
#include "obs/report.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"
#include "space/lazy_universe.hpp"

using namespace cstuner;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;  // "--key value" or "--key"

  bool has(const std::string& k) const { return flags.count(k) > 0; }
  std::string get(const std::string& k, const std::string& fallback) const {
    const auto it = flags.find(k);
    return it == flags.end() ? fallback : it->second;
  }
  double get_double(const std::string& k, double fallback) const {
    const auto it = flags.find(k);
    return it == flags.end() ? fallback : std::stod(it->second);
  }
  std::uint64_t get_u64(const std::string& k, std::uint64_t fallback) const {
    const auto it = flags.find(k);
    return it == flags.end() ? fallback : std::stoull(it->second);
  }
  std::vector<std::string> get_all(const std::string& k) const {
    std::vector<std::string> out;
    for (auto [lo, hi] = multi.equal_range(k); lo != hi; ++lo) {
      out.push_back(lo->second);
    }
    return out;
  }
  std::multimap<std::string, std::string> multi;
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) == 0) {
      std::string name = token.substr(2);
      std::string value;
      // "--key=value" binds inline; otherwise the next non-flag token (if
      // any) is the value.
      if (const auto eq = name.find('='); eq != std::string::npos) {
        value = name.substr(eq + 1);
        name.resize(eq);
      } else if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        value = argv[++i];
      }
      args.flags[name] = value;
      args.multi.emplace(name, value);
    } else if (token.rfind("-n", 0) == 0 && token.size() == 2) {
      if (i + 1 < argc) args.flags["n"] = argv[++i];
    } else {
      args.positional.push_back(token);
    }
  }
  return args;
}

/// Resolves the stencil: a built-in name (positional) or --spec <file>
/// pointing at a stencil-DSL document.
stencil::StencilSpec resolve_spec(const Args& args) {
  if (args.has("spec")) {
    return stencil::load_stencil_file(args.get("spec", ""));
  }
  return stencil::make_stencil(args.positional.at(0));
}

/// Applies "--set name=value" overrides onto a setting.
space::Setting parse_setting(const space::SearchSpace& space,
                             const Args& args) {
  space::Setting s;
  s.set(space::kTBx, 32);  // sensible default mapping
  for (const auto& assignment : args.get_all("set")) {
    const auto eq = assignment.find('=');
    if (eq == std::string::npos) {
      throw UsageError("--set expects name=value, got: " + assignment);
    }
    const std::string name = assignment.substr(0, eq);
    const auto value = std::stoll(assignment.substr(eq + 1));
    bool found = false;
    for (std::size_t i = 0; i < space::kParamCount; ++i) {
      const auto id = static_cast<space::ParamId>(i);
      if (name == space::param_name(id)) {
        s.set(id, value);
        found = true;
        break;
      }
    }
    if (!found) throw UsageError("unknown parameter: " + name);
  }
  return space.checker().canonicalized(s);
}

int cmd_list_stencils() {
  TextTable table({"stencil", "grid", "order", "flops", "io_arrays"});
  for (const auto& spec : stencil::all_stencils()) {
    table.add_row({spec.name, std::to_string(spec.grid[0]) + "^3",
                   std::to_string(spec.order), std::to_string(spec.flops),
                   std::to_string(spec.io_arrays)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_inspect(const Args& args) {
  const auto spec = resolve_spec(args);
  space::SearchSpace space(spec);
  std::cout << "stencil " << spec.name << ": grid " << spec.grid[0] << "x"
            << spec.grid[1] << "x" << spec.grid[2] << ", order " << spec.order
            << ", " << spec.flops << " FLOPs/point, " << spec.io_arrays
            << " arrays (" << spec.n_inputs << " in / " << spec.n_outputs
            << " out), " << spec.taps.size() << " taps\n";
  std::cout << "unconstrained space: 10^"
            << static_cast<int>(space.log10_cartesian_size())
            << " settings\n\n";
  TextTable table({"parameter", "kind", "values"});
  for (const auto& p : space.parameters()) {
    std::string values;
    for (std::size_t i = 0; i < p.values.size(); ++i) {
      if (i) values += ',';
      if (i >= 6) {
        values += "...," + std::to_string(p.values.back());
        break;
      }
      values += std::to_string(p.values[i]);
    }
    const char* kind = p.kind == space::ParamKind::kBool   ? "bool"
                       : p.kind == space::ParamKind::kEnum ? "enum"
                                                           : "pow2";
    table.add_row({p.name, kind, values});
  }
  table.print(std::cout);
  return 0;
}

int cmd_profile(const Args& args) {
  const auto spec = resolve_spec(args);
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::arch_by_name(args.get("arch", "a100")));
  const auto setting = parse_setting(space, args);
  if (const auto why = space.checker().violation(setting)) {
    std::cerr << "invalid setting: " << *why << '\n';
    return 1;
  }
  const auto profile = sim.profile(spec, setting);
  std::cout << "setting: " << setting.to_string() << '\n';
  std::cout << "time: " << profile.time_ms << " ms  (occupancy "
            << profile.occupancy.occupancy << ", limiter "
            << gpusim::limiter_name(profile.occupancy.limiter)
            << ", registers " << profile.resources.registers_per_thread
            << ", smem " << profile.resources.shared_mem_per_block
            << " B)\n\nmetrics:\n";
  TextTable table({"metric", "value"});
  for (std::size_t m = 0; m < gpusim::kMetricCount; ++m) {
    table.add_row({gpusim::metric_name(static_cast<gpusim::MetricId>(m)),
                   TextTable::fmt(profile.metrics[m], 4)});
  }
  table.print(std::cout);
  return 0;
}

int cmd_codegen(const Args& args) {
  const auto spec = resolve_spec(args);
  space::SearchSpace space(spec);
  const auto setting = parse_setting(space, args);
  const auto kernel = codegen::generate_kernel(spec, setting);
  std::cout << kernel.source << "\n// launch: " << kernel.launch << '\n';
  return 0;
}

int cmd_dataset(const Args& args) {
  const auto spec = resolve_spec(args);
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::arch_by_name(args.get("arch", "a100")));
  Rng rng(args.get_u64("seed", 1));
  const auto n = static_cast<std::size_t>(args.get_u64("n", 128));
  const auto dataset = tuner::collect_dataset(space, sim, n, rng);
  // CSV: parameters, time, metrics.
  for (std::size_t p = 0; p < space::kParamCount; ++p) {
    std::cout << space::param_name(static_cast<space::ParamId>(p)) << ',';
  }
  std::cout << "time_ms";
  for (const auto& metric : gpusim::metric_names()) std::cout << ',' << metric;
  std::cout << '\n';
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    for (std::size_t p = 0; p < space::kParamCount; ++p) {
      std::cout << dataset.settings[i].get(static_cast<space::ParamId>(p))
                << ',';
    }
    std::cout << dataset.times_ms[i];
    for (std::size_t m = 0; m < gpusim::kMetricCount; ++m) {
      std::cout << ',' << dataset.metrics(i, m);
    }
    std::cout << '\n';
  }
  return 0;
}

int cmd_validate(const Args& args) {
  const auto name = args.positional.at(0);
  const int scale = static_cast<int>(args.get_u64("scale", 20));
  auto spec = stencil::scaled_stencil(name, scale);
  space::SearchSpace space(spec);
  Rng rng(args.get_u64("seed", 1));
  const int trials = static_cast<int>(args.get_u64("trials", 5));
  for (int i = 0; i < trials; ++i) {
    const auto setting = space.random_valid(rng);
    const double divergence =
        exec::max_divergence_from_reference(spec, setting);
    std::cout << (divergence == 0.0 ? "OK   " : "FAIL ")
              << setting.to_string() << '\n';
    if (divergence != 0.0) return 1;
  }
  std::cout << trials << " random decompositions match the reference.\n";
  return 0;
}

/// `analyze --space`: whole-space static analysis via the symbolic
/// constraint-propagation engine — exact valid-setting counts, proven dead
/// values/pairs with unsat certificates, per-rule pruning attribution, and
/// (with --enumerate N) a checker-verified walk of the first N settings of
/// the lazily enumerated universe. `--all` sweeps the built-in suite; the
/// JSON document is stable enough to gate in CI at 0% tolerance.
int cmd_analyze_space(const Args& args) {
  std::vector<stencil::StencilSpec> specs;
  if (args.has("all")) {
    specs = stencil::all_stencils();
  } else {
    specs.push_back(resolve_spec(args));
  }
  const auto enumerate_limit = args.get_u64("enumerate", 0);

  std::size_t errors = 0;
  std::size_t warnings = 0;
  JsonWriter json;
  const bool json_out = args.has("json");
  if (json_out) {
    json.begin_object();
    json.key("spaces").begin_array();
  }
  for (const auto& spec : specs) {
    space::SearchSpace space(spec);
    const auto prop = analysis::propagate(space);

    analysis::SpaceLintOptions lint_options;
    lint_options.seed = args.get_u64("seed", 1);
    const auto lint = analysis::lint_space(space, lint_options);
    errors += lint.report.error_count();
    warnings += lint.report.count(analysis::Severity::kWarning);

    // Optional cross-check: enumerate the head of the valid universe in the
    // deterministic LazyUniverse order and re-verify every setting against
    // the full constraint checker.
    std::uint64_t enumerated = 0;
    std::uint64_t enumerate_mismatch = 0;
    if (enumerate_limit > 0 && prop.engine_applicable) {
      space::LazyUniverse lazy(space);
      const auto settings =
          lazy.take_all(static_cast<std::size_t>(enumerate_limit));
      enumerated = settings.size();
      for (const auto& s : settings) {
        if (!space.is_valid(s)) ++enumerate_mismatch;
      }
      if (enumerate_mismatch > 0) ++errors;
    }

    std::size_t empty_regions = 0;
    for (const auto& summary : prop.region_summaries) {
      if (summary.empty) ++empty_regions;
    }

    if (json_out) {
      json.begin_object();
      json.field("stencil", spec.name);
      json.field("engine_applicable", prop.engine_applicable ? 1 : 0);
      json.field("proven", lint.proven ? 1 : 0);
      json.field("log10_raw", space.log10_cartesian_size());
      json.field("valid_count", prop.valid_count);
      json.field("regions", prop.regions.size());
      json.field("empty_regions", empty_regions);
      json.field("dead_values", prop.dead_values.size());
      json.field("dead_pairs", prop.dead_pairs.size());
      json.key("rule_prunes").begin_object();
      for (const auto& [rule, count] : prop.rule_prunes) {
        json.field(rule, count);
      }
      json.end_object();
      if (enumerate_limit > 0) {
        json.field("enumerated", enumerated);
        json.field("enumerate_mismatch", enumerate_mismatch);
      }
      json.key("space_lint");
      lint.report.write_json(json);
      json.end_object();
    } else {
      std::cout << "== " << spec.name << " ==\n";
      if (!prop.engine_applicable) {
        std::cout << "symbolic engine inapplicable: "
                  << prop.inapplicable_reason << '\n';
      } else {
        std::cout << "valid settings: " << prop.valid_count << " (exact) of 10^"
                  << static_cast<int>(space.log10_cartesian_size())
                  << " raw combinations\n";
        std::cout << "regions: " << prop.regions.size() << " ("
                  << empty_regions << " proven empty)\n";
        if (!prop.dead_values.empty()) {
          std::cout << "proven-dead values:\n";
          for (const auto& dead : prop.dead_values) {
            std::cout << "  " << space::param_name(dead.param) << "="
                      << dead.value << "  [rule " << dead.rule << "] "
                      << dead.certificate << '\n';
          }
        }
        if (!prop.dead_pairs.empty()) {
          std::cout << "proven-dead pairs:\n";
          for (const auto& dead : prop.dead_pairs) {
            std::cout << "  (" << space::param_name(dead.a) << "="
                      << dead.value_a << ", " << space::param_name(dead.b)
                      << "=" << dead.value_b << ") " << dead.certificate
                      << '\n';
          }
        }
        if (!prop.rule_prunes.empty()) {
          TextTable table({"rule", "domain values pruned"});
          for (const auto& [rule, count] : prop.rule_prunes) {
            table.add_row({rule, std::to_string(count)});
          }
          table.print(std::cout);
        }
        if (enumerate_limit > 0) {
          std::cout << "enumerated " << enumerated
                    << " setting(s) in deterministic order; "
                    << enumerate_mismatch << " failed re-verification\n";
        }
      }
      std::cout << "-- space lint\n" << lint.report.to_string();
    }
  }
  if (json_out) {
    json.end_array();
    json.field("errors", errors);
    json.field("warnings", warnings);
    json.end_object();
    std::cout << json.str() << '\n';
  } else {
    std::cout << specs.size() << " space(s) analyzed: " << errors
              << " error(s), " << warnings << " warning(s)\n";
  }
  return errors == 0 ? 0 : 1;
}

int cmd_analyze(const Args& args) {
  if (args.has("space")) return cmd_analyze_space(args);
  const auto spec = resolve_spec(args);
  space::SearchSpace space(spec);
  const auto arch = gpusim::arch_by_name(args.get("arch", "a100"));
  analysis::AnalyzerOptions options;
  options.arch = &arch;

  // Settings under analysis: an explicit --set assignment, or a seeded
  // sample of valid settings covering the space.
  std::vector<space::Setting> settings;
  if (!args.get_all("set").empty()) {
    settings.push_back(parse_setting(space, args));
  } else {
    Rng rng(args.get_u64("seed", 1));
    const auto n = static_cast<std::size_t>(args.get_u64("samples", 16));
    for (std::size_t i = 0; i < n; ++i) {
      settings.push_back(space.random_valid(rng));
    }
  }

  std::vector<analysis::Report> reports;
  reports.reserve(settings.size());
  std::size_t errors = 0;
  std::size_t warnings = 0;
  for (const auto& setting : settings) {
    analysis::Report report;
    if (const auto why = space.checker().violation(setting)) {
      report.error("constraint.violation", "setting", *why);
    } else {
      report = analysis::analyze_setting(spec, setting, options);
    }
    errors += report.error_count();
    warnings += report.count(analysis::Severity::kWarning);
    reports.push_back(std::move(report));
  }

  analysis::SpaceLintResult lint;
  const bool run_lint = !args.has("no-lint");
  if (run_lint) {
    analysis::SpaceLintOptions lint_options;
    lint_options.seed = args.get_u64("seed", 1);
    lint = analysis::lint_space(space, lint_options);
    errors += lint.report.error_count();
    warnings += lint.report.count(analysis::Severity::kWarning);
  }

  if (args.has("json")) {
    JsonWriter json;
    json.begin_object();
    json.field("stencil", spec.name);
    json.field("arch", arch.name);
    json.key("settings").begin_array();
    for (std::size_t i = 0; i < settings.size(); ++i) {
      json.begin_object();
      json.field("setting", settings[i].to_string());
      json.field("clean", reports[i].clean());
      json.key("diagnostics");
      reports[i].write_json(json);
      json.end_object();
    }
    json.end_array();
    if (run_lint) {
      json.field("dead_values", lint.dead_values);
      json.field("dead_pairs", lint.dead_pairs);
      json.field("valid_fraction", lint.sampled_valid_fraction);
      json.key("space_lint");
      lint.report.write_json(json);
    }
    json.field("errors", errors);
    json.field("warnings", warnings);
    json.end_object();
    std::cout << json.str() << '\n';
  } else {
    for (std::size_t i = 0; i < settings.size(); ++i) {
      std::cout << "-- " << settings[i].to_string() << '\n';
      if (reports[i].empty()) {
        std::cout << "   clean (race, bounds, resource)\n";
      } else {
        std::cout << reports[i].to_string();
      }
    }
    if (run_lint) {
      std::cout << "-- space lint\n" << lint.report.to_string();
    }
    std::cout << settings.size() << " setting(s) analyzed: " << errors
              << " error(s), " << warnings << " warning(s)\n";
  }
  return errors == 0 ? 0 : 1;
}

int cmd_tune(const Args& args) {
  // Observability: --trace-out enables the global span tracer and writes a
  // Chrome trace_event file; --metrics folds the metrics registry into the
  // --json document (or prints it after the text summary).
  const bool want_trace = args.has("trace-out");
  const bool want_metrics = args.has("metrics");
  if ((want_trace || want_metrics) && !obs::kCompiledIn) {
    std::cerr << "warning: built with CSTUNER_OBS=OFF; trace/metrics "
                 "output will be empty\n";
  }
  if (want_trace) obs::Tracer::global().set_enabled(true);
  const auto spec = resolve_spec(args);
  space::SearchSpace space(spec);
  gpusim::Simulator sim(gpusim::arch_by_name(args.get("arch", "a100")));
  const auto seed = args.get_u64("seed", 7);
  tuner::Evaluator evaluator(sim, space, {}, seed);
  // Debug mode: statically analyze every kernel before its first
  // measurement; aborts the run on analyzer errors.
  evaluator.set_debug_precheck(args.has("precheck"));

  // Fault injection: --fault-rate, or the CSTUNER_FAULT_RATE environment
  // knob (the CI fault-storm gate) when the flag is absent.
  const double fault_rate = args.has("fault-rate")
                                ? args.get_double("fault-rate", 0.0)
                                : gpusim::FaultConfig::rate_from_env();
  if (fault_rate > 0.0) {
    evaluator.set_fault_injection(gpusim::FaultConfig::uniform(fault_rate, seed),
                                  spec.name);
  }
  tuner::RetryPolicy policy;
  policy.max_attempts =
      static_cast<int>(args.get_u64("max-attempts",
                                    static_cast<std::uint64_t>(policy.max_attempts)));
  policy.fault_budget_s = args.get_double("fault-budget", policy.fault_budget_s);
  evaluator.set_retry_policy(policy);

  // Rank-kill chaos: each --kill-rank=R@G schedules island R of the
  // distributed GA to die at generation G (deterministic, replayable).
  std::vector<tuner::RankKill> kill_plan;
  for (const auto& spec_str : args.get_all("kill-rank")) {
    const auto at = spec_str.find('@');
    if (at == std::string::npos || at == 0 || at + 1 == spec_str.size()) {
      std::cerr << "error: --kill-rank expects RANK@GENERATION, got: "
                << spec_str << '\n';
      return 1;
    }
    tuner::RankKill kill;
    kill.rank = std::stoi(spec_str.substr(0, at));
    kill.generation = std::stoull(spec_str.substr(at + 1));
    kill_plan.push_back(kill);
  }

  // Crash-safe checkpointing: journal + periodic snapshots in --checkpoint
  // <dir>; --resume replays the journal so the continuation is
  // bit-identical to a run that was never interrupted.
  std::optional<tuner::Checkpoint> checkpoint;
  if (args.has("checkpoint")) {
    checkpoint.emplace(args.get("checkpoint", "checkpoint"));
    // --checkpoint-sync=every fsyncs each journaled evaluation; batch (the
    // default) buffers until the per-iteration flush.
    const std::string sync = args.get("checkpoint-sync", "batch");
    if (sync == "every") {
      checkpoint->set_sync_policy(tuner::Checkpoint::SyncPolicy::kEvery);
    } else if (sync != "batch") {
      std::cerr << "error: --checkpoint-sync expects every|batch, got: "
                << sync << '\n';
      return 1;
    }
    if (args.has("resume")) {
      if (!checkpoint->has_journal_file()) {
        // Starting a fresh run here would silently discard the user's
        // intent to continue an old one — refuse instead.
        std::cerr << "error: --resume: no journal at "
                  << checkpoint->journal_file()
                  << " (use --checkpoint without --resume to start fresh)\n";
        return 1;
      }
      const auto recovered = checkpoint->load();
      std::cerr << "resuming from " << checkpoint->directory() << ": "
                << recovered << " journaled evaluation(s), "
                << checkpoint->island_events().size()
                << " island event(s)\n";
      // Journaled island deaths fold back into the kill plan so a
      // degraded run resumes bit-identically without re-passing flags.
      for (const tuner::RankKill& kill :
           tuner::kill_plan_from_events(checkpoint->island_events())) {
        kill_plan.push_back(kill);
      }
    }
    evaluator.set_checkpoint(&*checkpoint);
  }
  if (!kill_plan.empty()) {
    evaluator.set_kill_plan(std::move(kill_plan), spec.name);
  }

  const std::string method = args.get("method", "csTuner");
  std::unique_ptr<tuner::Tuner> tuner;
  core::CsTuner* cs_tuner = nullptr;  // for the enumerate-mode report
  std::unique_ptr<search::Optimizer> optimizer;  // --optimizer zoo path
  if (args.has("optimizer")) {
    // The optimizer zoo (docs/optimizers.md): any registered optimizer by
    // name, or "auto" to let the MetaTuner pick from stencil features.
    std::string opt_name = args.get("optimizer", "auto");
    if (opt_name == "auto") {
      opt_name = search::MetaTuner().pick(spec);
      std::cerr << "optimizer: auto -> " << opt_name << '\n';
    }
    search::OptimizerOptions options;
    options.seed = seed;
    options.ga.sub_populations = static_cast<int>(args.get_u64(
        "islands", static_cast<std::uint64_t>(options.ga.sub_populations)));
    // Unknown names throw UsageError listing every registered optimizer;
    // main() routes that to stderr with exit code 1.
    optimizer = search::optimizer_registry().make(opt_name, options);
  } else if (method == "csTuner") {
    core::CsTunerOptions options;
    options.universe_size =
        static_cast<std::size_t>(args.get_u64("universe", 8000));
    options.seed = seed;
    options.ga.sub_populations = static_cast<int>(args.get_u64(
        "islands", static_cast<std::uint64_t>(options.ga.sub_populations)));
    options.ga.min_islands = static_cast<int>(args.get_u64(
        "min-islands", static_cast<std::uint64_t>(options.ga.min_islands)));
    // Exact enumeration builds the candidate universe by default;
    // --no-enumerate falls back to seed-salted universe sampling
    // (--enumerate is still accepted for compatibility).
    options.enumerate_universe = !args.has("no-enumerate");
    auto cs = std::make_unique<core::CsTuner>(options);
    cs_tuner = cs.get();
    tuner = std::move(cs);
  } else if (method == "garvey") {
    baselines::GarveyOptions options;
    options.seed = seed;
    tuner = std::make_unique<baselines::Garvey>(options);
  } else if (method == "opentuner") {
    baselines::OpenTunerOptions options;
    options.seed = seed;
    tuner = std::make_unique<baselines::OpenTuner>(options);
  } else if (method == "artemis") {
    baselines::ArtemisOptions options;
    options.seed = seed;
    tuner = std::make_unique<baselines::Artemis>(options);
  } else {
    std::cerr << "unknown method: " << method
              << " (csTuner|garvey|opentuner|artemis)\n";
    return 1;
  }

  tuner::StopCriteria stop;
  stop.max_virtual_seconds = args.get_double("budget", 60.0);
  if (optimizer != nullptr) {
    // Natively-checkpointable optimizers restore their state from the
    // snapshot; the rest return false and resume by journal replay.
    if (checkpoint.has_value() &&
        checkpoint->loaded_optimizer_state().has_value() &&
        optimizer->restore_state(*checkpoint->loaded_optimizer_state())) {
      std::cerr << "optimizer state restored from snapshot ("
                << optimizer->completed_steps() << " step(s))\n";
    }
    search::run_optimizer(*optimizer, evaluator, stop);
  } else {
    tuner->tune(evaluator, stop);
  }
  const std::string algo_name =
      optimizer != nullptr ? optimizer->name() : tuner->name();

  if (checkpoint.has_value()) {
    // Final durability point: everything committed is journaled and the
    // closing snapshot reflects the finished run.
    checkpoint->flush();
    checkpoint->write_snapshot(evaluator.serialize_state());
  }

  if (want_trace) {
    const std::string path = args.get("trace-out", "trace.json");
    JsonWriter trace_json;
    obs::Tracer::global().write_chrome_json(trace_json);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("cannot write trace " + path);
    out << trace_json.str() << '\n';
    out.flush();
    if (!out) throw Error("trace write failed: " + path);
    std::cerr << "trace written to " << path
              << " (load it at chrome://tracing or ui.perfetto.dev)\n";
    obs::Tracer::global().write_summary(std::cerr);
  }

  const tuner::FaultStats stats = evaluator.fault_stats();
  if (args.has("json")) {
    JsonWriter json;
    json.begin_object();
    json.field("stencil", spec.name);
    json.field("arch", sim.arch().name);
    json.field("method", algo_name);
    if (optimizer != nullptr) json.field("optimizer", optimizer->name());
    json.field("best_time_ms", evaluator.best_time_ms());
    json.field("best_setting", evaluator.best_setting()->to_string());
    json.field("evaluations", evaluator.unique_evaluations());
    json.field("iterations", evaluator.iterations());
    json.field("virtual_time_s", evaluator.virtual_time_s());
    if (cs_tuner != nullptr && cs_tuner->report().universe_exact_count > 0) {
      json.field("universe_exact_count",
                 cs_tuner->report().universe_exact_count);
    }
    json.field("fault_rate", fault_rate);
    json.key("fault_stats");
    stats.write_json(json);
    json.key("trace");
    evaluator.trace().write_json(json);
    if (want_metrics) {
      json.key("metrics");
      obs::metrics().write_json(json);
    }
    if (want_trace) {
      json.key("virtual_span_totals");
      obs::Tracer::global().write_virtual_totals_json(json);
    }
    json.end_object();
    std::cout << json.str() << '\n';
  } else {
    std::cout << "method:        " << algo_name << '\n'
              << "best time:     " << evaluator.best_time_ms() << " ms\n"
              << "best setting:  " << evaluator.best_setting()->to_string()
              << '\n'
              << "evaluations:   " << evaluator.unique_evaluations() << '\n'
              << "virtual time:  " << evaluator.virtual_time_s() << " s\n";
    if (cs_tuner != nullptr && cs_tuner->report().universe_exact_count > 0) {
      std::cout << "exact space:   "
                << cs_tuner->report().universe_exact_count
                << " valid setting(s)\n";
    }
    if (stats.any() || fault_rate > 0.0) {
      std::cout << "failures:      " << stats.to_string() << '\n';
    }
    if (want_metrics) {
      JsonWriter metrics_json;
      obs::metrics().write_json(metrics_json);
      std::cout << "metrics:       " << metrics_json.str() << '\n';
    }
  }
  return 0;
}

int cmd_tournament(const Args& args) {
  // Iso-budget optimizer tournament: every optimizer races every stencil
  // under the same virtual budget and seed; positional args narrow the
  // stencils (none, or --all, races the whole suite) and repeatable
  // --optimizer flags narrow the roster.
  search::TournamentOptions options;
  if (!args.has("all")) {
    for (const auto& name : args.positional) options.stencils.push_back(name);
  }
  options.arch = args.get("arch", options.arch);
  options.budget_s = args.get_double("budget", options.budget_s);
  options.seed = args.get_u64("seed", options.seed);
  for (const auto& name : args.get_all("optimizer")) {
    options.optimizers.push_back(name);
  }

  const search::TournamentResult result = search::run_tournament(options);
  const std::string json = search::tournament_json(result);
  if (args.has("out")) {
    const std::string path = args.get("out", "tournament.json");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("cannot write leaderboard " + path);
    out << json << '\n';
    out.flush();
    if (!out) throw Error("leaderboard write failed: " + path);
    std::cerr << "leaderboard written to " << path << '\n';
  }
  if (args.has("json")) {
    std::cout << json << '\n';
  } else {
    search::print_tournament(result, std::cout);
  }
  return 0;
}

int cmd_report(const Args& args) {
  if (args.positional.empty() || !args.has("baseline")) {
    std::cerr << "usage: cstuner report <current.json> --baseline <file>\n"
                 "       [--tol 10%] [--ignore substr ...] [--allow-missing]\n"
                 "       [--json]\n";
    return 2;
  }
  obs::CompareOptions options;
  options.tolerance = obs::parse_tolerance(args.get("tol", "10%"));
  for (const auto& extra : args.get_all("ignore")) {
    if (!extra.empty()) options.ignore.push_back(extra);
  }
  options.fail_on_missing = !args.has("allow-missing");
  const obs::CompareReport report = obs::compare_report_files(
      args.get("baseline", ""), args.positional.at(0), options);
  if (args.has("json")) {
    JsonWriter json;
    report.write_json(json);
    std::cout << json.str() << '\n';
  } else {
    std::cout << report.to_string();
  }
  return report.ok() ? 0 : 1;
}

int cmd_serve(const Args& args) {
  serve::ServeOptions options;
  options.state_dir = args.get("state-dir", "serve-state");
  options.admission.max_running = static_cast<std::size_t>(
      args.get_u64("max-running", options.admission.max_running));
  options.admission.max_queued = static_cast<std::size_t>(
      args.get_u64("max-queued", options.admission.max_queued));
  options.admission.tenant_quota = static_cast<std::size_t>(
      args.get_u64("tenant-quota", options.admission.tenant_quota));
  options.drain_grace_s = args.get_double("drain-grace", options.drain_grace_s);
  options.warm_start = !args.has("no-warm-start");
  const std::string sync = args.get("checkpoint-sync", "batch");
  if (sync == "every") {
    options.checkpoint_sync = tuner::Checkpoint::SyncPolicy::kEvery;
  } else if (sync != "batch") {
    std::cerr << "error: --checkpoint-sync expects every|batch, got: " << sync
              << '\n';
    return 1;
  }

  serve::ServerOptions server_options;
  server_options.host = args.get("host", "127.0.0.1");
  server_options.port = static_cast<int>(args.get_u64("port", 0));
  server_options.port_file = args.get("port-file", "");

  // SIGTERM/SIGINT route to the graceful drain; install before the manager
  // starts resuming adopted sessions so an early signal still drains.
  serve::Server::install_signal_handlers();
  serve::SessionManager manager(options);
  serve::Server server(manager, server_options);
  server.run();
  return 0;
}

int cmd_client(const Args& args) {
  const std::string request = args.get("request", "");
  if (request.empty()) {
    std::cerr << "usage: cstuner client --request '<json>' [--port N]\n"
                 "       [--port-file file] [--host H] [--timeout seconds]\n";
    return 2;
  }
  int port = static_cast<int>(args.get_u64("port", 0));
  if (port == 0 && args.has("port-file")) {
    std::ifstream in(args.get("port-file", ""));
    in >> port;
  }
  if (port == 0) {
    std::cerr << "error: client needs --port or --port-file\n";
    return 2;
  }
  const std::string host = args.get("host", "127.0.0.1");
  const int timeout_ms =
      static_cast<int>(args.get_double("timeout", 120.0) * 1000.0);

  const int fd = serve::connect_to(host, port, timeout_ms);
  serve::send_all(fd, request + "\n");
  const bool streaming =
      json_parse(request).at("op").as_string() == "stream";
  serve::LineReader reader(fd);
  std::string line;
  std::string last_type;
  for (;;) {
    const auto status = reader.read_line(line, timeout_ms);
    if (status != serve::LineReader::Status::kLine) {
      ::close(fd);
      std::cerr << "error: no response from daemon\n";
      return 1;
    }
    std::cout << line << '\n';
    last_type = json_parse(line).at("type").as_string();
    // A stream keeps emitting "status" lines until the terminal response.
    if (!streaming || last_type != "status") break;
  }
  ::close(fd);
  return (last_type == "error" || last_type == "bad_request") ? 1 : 0;
}

int usage() {
  std::cerr
      << "usage: cstuner <command> [args]\n"
         "  list-stencils\n"
         "  inspect  <stencil> | --spec <file.stencil>\n"
         "  profile  <stencil> [--arch a100|v100] [--set name=value ...]\n"
         "  codegen  <stencil> [--set name=value ...]\n"
         "  dataset  <stencil> [-n N] [--arch ...] [--seed N]\n"
         "  validate <stencil> [--scale S] [--trials N]\n"
         "  analyze  <stencil> [--arch ...] [--set name=value ...]\n"
         "           [--samples N] [--seed N] [--no-lint] [--json]\n"
         "           [--space [--all] [--enumerate N]]   whole-space proofs\n"
         "  tune     <stencil> [--method csTuner|garvey|opentuner|artemis]\n"
         "           [--optimizer <name>|auto]   optimizer zoo (see\n"
         "           `tournament` for names; auto = MetaTuner selection)\n"
         "           [--budget seconds] [--arch ...] [--seed N] [--json]\n"
         "           [--enumerate]   exact universe via lazy enumeration\n"
         "           [--precheck] [--fault-rate R] [--max-attempts N]\n"
         "           [--fault-budget seconds] [--checkpoint dir] [--resume]\n"
         "           [--islands N] [--min-islands N] [--kill-rank R@G ...]\n"
         "           [--trace-out file.json] [--metrics]\n"
         "  tournament [stencil ...] [--all] [--budget seconds]\n"
         "           [--arch ...] [--seed N] [--optimizer name ...]\n"
         "           [--json] [--out file.json]   iso-budget leaderboard\n"
         "  report   <current.json> --baseline <file> [--tol 10%]\n"
         "           [--ignore substr ...] [--allow-missing] [--json]\n"
         "  serve    [--host H] [--port N] [--port-file file]\n"
         "           [--state-dir dir] [--max-running N] [--max-queued N]\n"
         "           [--tenant-quota N] [--checkpoint-sync every|batch]\n"
         "           [--drain-grace seconds] [--no-warm-start]\n"
         "  client   --request '<json>' [--port N | --port-file file]\n"
         "           [--host H] [--timeout seconds]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "list-stencils") return cmd_list_stencils();
    if (args.command == "report") return cmd_report(args);
    if (args.command == "tournament") return cmd_tournament(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "client") return cmd_client(args);
    // "analyze --all --space" sweeps every built-in stencil, so it is the
    // one stencil-scoped command that needs no positional.
    if (args.positional.empty() && !args.has("spec") &&
        !(args.command == "analyze" && args.has("all"))) {
      return usage();
    }
    if (args.command == "inspect") return cmd_inspect(args);
    if (args.command == "profile") return cmd_profile(args);
    if (args.command == "codegen") return cmd_codegen(args);
    if (args.command == "dataset") return cmd_dataset(args);
    if (args.command == "validate") return cmd_validate(args);
    if (args.command == "analyze") return cmd_analyze(args);
    if (args.command == "tune") return cmd_tune(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
