#!/usr/bin/env bash
# Sanitizer gate: configures a dedicated build tree with ASan+UBSan, builds
# everything, and runs the full test suite under instrumentation. The TSan
# variant for the parallel evaluation engine is one flag away:
#
#   tools/check.sh              # address,undefined (default)
#   tools/check.sh thread       # ThreadSanitizer
#
# The build tree defaults to build-sanitize-<config> next to the sources;
# set CSTUNER_BUILD_DIR to put it elsewhere (CI uses this to share the
# ccache-warmed tree between steps).
#
# Configure/build failures abort immediately (nothing later can run).
# The test and fault-storm stages both run even if one fails, and every
# stage's exit code is accumulated into the final status, so one red stage
# cannot mask another.
set -uo pipefail

SANITIZE="${1:-address,undefined}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${CSTUNER_BUILD_DIR:-${ROOT}/build-sanitize-${SANITIZE//,/+}}"

status=0
failed=()

# run_stage <name> <command...>: runs the command, records a failure in
# $status/$failed, and returns the command's exit code so callers can still
# abort on stages that later stages depend on.
run_stage() {
  local name="$1"
  shift
  echo "== ${name}"
  "$@"
  local rc=$?
  if [[ ${rc} -ne 0 ]]; then
    echo "== ${name}: FAILED (exit ${rc})" >&2
    status=1
    failed+=("${name}")
  else
    echo "== ${name}: ok"
  fi
  return "${rc}"
}

run_stage "configure(${SANITIZE})" cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCSTUNER_SANITIZE="${SANITIZE}" || exit 1
run_stage "build" cmake --build "${BUILD}" -j "$(nproc)" || exit 1

# halt_on_error makes a sanitizer finding fail the ctest run instead of
# scrolling past; detect_leaks stays on for the ASan configuration.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1"

run_stage "tests" ctest --test-dir "${BUILD}" --output-on-failure \
  -j "$(nproc)" || true

# Fault-storm gate: the end-to-end tune must converge and exit cleanly while
# a fifth of all evaluations are failing (docs/fault-tolerance.md), still
# under the sanitizers — retry/backoff, quarantine and the failure-stats
# reporting all run hot on this path.
fault_storm() {
  CSTUNER_FAULT_RATE=0.2 "${BUILD}/tools/cstuner" tune j3d7pt \
    --budget 20 --universe 2000 --json > /dev/null
}
run_stage "fault-storm(CSTUNER_FAULT_RATE=0.2)" fault_storm || true

# Rank-kill chaos gate (docs/fault-tolerance.md, "Distributed failures"):
# first the deterministic recovery suites — recoverable minimpi, GA ring
# healing/elite adoption, kill-plan scheduling, survival acceptance — under
# the sanitizers and a 20% eval-fault rate, then an end-to-end 4-island
# tune that loses an island at generation 2 while evaluations are failing.
chaos_tests() {
  CSTUNER_FAULT_RATE=0.2 ctest --test-dir "${BUILD}" --output-on-failure \
    -j "$(nproc)" \
    -R 'MiniMpiRecoverable|IslandGaSurvival|SurvivalFixture|FaultInjector\.KillPlan|cli_tune_kill'
}
run_stage "chaos-tests(rank-kill/ring-heal)" chaos_tests || true

# Serve recovery gate (docs/serving.md): the daemon's concurrent session
# scheduling, drain/park/re-adopt resume and deadline isolation run under
# the sanitizers (the TSan configuration is the interesting one — sessions
# are real threads sharing the admission controller and warm store), then
# the cross-process smoke kills a live daemon and diffs the recovered
# results byte for byte.
serve_tests() {
  ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)" \
    -R 'SessionManagerTest|Admission\.|WarmStoreTest|cli_serve_smoke'
}
run_stage "serve-tests(kill/recover/overload)" serve_tests || true

# Optimizer-zoo gate (docs/optimizers.md): the pluggable-searcher suite —
# worker determinism, regression pins against the pre-refactor searchers,
# journal/native resume, tournament byte-stability, the zoo CLI paths —
# under the sanitizers while a fifth of all evaluations are failing.
optimizer_suite() {
  CSTUNER_FAULT_RATE=0.2 ctest --test-dir "${BUILD}" --output-on-failure \
    -j "$(nproc)" \
    -R 'Registry\.|ZooFixture|Tournament\.|MetaTuner\.|ResumeTest|cli_tune_optimizer|cli_tournament'
}
run_stage "optimizer-suite(zoo under fault storm)" optimizer_suite || true

rank_kill_storm() {
  CSTUNER_FAULT_RATE=0.2 "${BUILD}/tools/cstuner" tune j3d7pt \
    --universe 8000 --islands 4 --kill-rank 1@2 --min-islands 1 \
    --json > /dev/null
}
run_stage "rank-kill-storm(--kill-rank 1@2)" rank_kill_storm || true

# I/O-chaos gate (docs/durability.md): the Vfs fault layer, the protocol
# fuzzer's 10k-frame storm and the crash-consistency sweep — power cuts
# after every k-th Vfs operation of a tune and a serve run, restart,
# recover, assert bit-identical resume / clean re-adoption — all under the
# sanitizers, where a torn-state bug shows up as a concrete read of freed
# or uninitialized memory instead of silent corruption.
io_chaos_tests() {
  ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)" \
    -R 'FaultVfs|RealVfs|ParentDir|CheckpointOnFaultVfs|ServeFuzzFixture|crash_sweep_smoke'
}
run_stage "io-chaos(fault-vfs/fuzzer/crash-sweep)" io_chaos_tests || true

io_chaos_sweep() {
  "${BUILD}/tools/crash_sweep" --mode all --stride 7 --budget 0.5 \
    --universe 200 --json > /dev/null
}
run_stage "io-chaos-sweep(--stride 7)" io_chaos_sweep || true

if [[ ${status} -ne 0 ]]; then
  echo "sanitize(${SANITIZE}): FAILED stages: ${failed[*]}" >&2
else
  echo "sanitize(${SANITIZE}): all stages clean"
fi
exit "${status}"
