#!/usr/bin/env bash
# Sanitizer gate: configures a dedicated build tree with ASan+UBSan, builds
# everything, and runs the full test suite under instrumentation. The TSan
# variant for the parallel evaluation engine is one flag away:
#
#   tools/check.sh              # address,undefined (default)
#   tools/check.sh thread       # ThreadSanitizer
#
# Exits nonzero on any configure/build/test failure or sanitizer report.
set -euo pipefail

SANITIZE="${1:-address,undefined}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ROOT}/build-sanitize-${SANITIZE//,/+}"

cmake -B "${BUILD}" -S "${ROOT}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCSTUNER_SANITIZE="${SANITIZE}"
cmake --build "${BUILD}" -j "$(nproc)"

# halt_on_error makes a sanitizer finding fail the ctest run instead of
# scrolling past; detect_leaks stays on for the ASan configuration.
export ASAN_OPTIONS="halt_on_error=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1"

ctest --test-dir "${BUILD}" --output-on-failure -j "$(nproc)"
echo "sanitize(${SANITIZE}): all tests clean"

# Fault-storm gate: the end-to-end tune must converge and exit cleanly while
# a fifth of all evaluations are failing (docs/fault-tolerance.md), still
# under the sanitizers — retry/backoff, quarantine and the failure-stats
# reporting all run hot on this path.
CSTUNER_FAULT_RATE=0.2 "${BUILD}/tools/cstuner" tune j3d7pt \
  --budget 20 --universe 2000 --json > /dev/null
echo "sanitize(${SANITIZE}): fault-storm tune (CSTUNER_FAULT_RATE=0.2) clean"
