#!/usr/bin/env bash
# End-to-end smoke of the tuning daemon (docs/serving.md): a real cstuner
# binary serving real TCP clients, covering the three guarantees the serve
# subsystem makes and the unit tests cannot exercise across a process kill:
#
#   1. crash recovery — SIGKILL the daemon mid-tune, restart it on the same
#      state directory, and require every session's final result line to be
#      byte-identical to an uninterrupted reference daemon's;
#   2. overload — with a bounded queue, a submit burst gets typed
#      "rejected" responses carrying retry_after_s > 0, and every session
#      that was *accepted* still runs to a "done" result (zero
#      dropped-but-accepted);
#   3. deadlines — a request whose virtual-clock deadline is tighter than
#      its budget comes back "expired", not hung and not "done".
#
# Usage: serve_smoke.sh /path/to/cstuner [workdir]
# Each phase uses its own state directory under the workdir.
set -uo pipefail

CLI="${1:?usage: serve_smoke.sh /path/to/cstuner [workdir]}"
WORK="${2:-$(mktemp -d /tmp/serve_smoke.XXXXXX)}"
mkdir -p "${WORK}"
# A previous aborted run (e.g. a ctest timeout mid-phase) leaves session
# state behind; a daemon restarted on it would re-adopt those sessions and
# shift every id this run compares. Start from clean state directories.
rm -rf "${WORK:?}/ref" "${WORK:?}/crash" "${WORK:?}/overload" \
       "${WORK:?}/deadline"
: >"${WORK}/daemon.log"

status=0
daemon_pid=0
port_file=""

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  status=1
}

cleanup() {
  if [[ ${daemon_pid} -ne 0 ]] && kill -0 "${daemon_pid}" 2>/dev/null; then
    kill -9 "${daemon_pid}" 2>/dev/null
    wait "${daemon_pid}" 2>/dev/null
  fi
}
trap cleanup EXIT

# start_daemon <state-dir> <flags...>: launches the daemon on an ephemeral
# port and waits for the port file. The PID lands in $daemon_pid — only $!
# is ever killed, never a pattern match.
start_daemon() {
  local state_dir="$1"
  shift
  port_file="${state_dir}.port"
  rm -f "${port_file}"
  "${CLI}" serve --state-dir "${state_dir}" --port-file "${port_file}" \
    "$@" 2>>"${WORK}/daemon.log" &
  daemon_pid=$!
  for _ in $(seq 1 200); do
    [[ -s "${port_file}" ]] && return 0
    kill -0 "${daemon_pid}" 2>/dev/null || break
    sleep 0.05
  done
  echo "serve_smoke: daemon failed to start (see ${WORK}/daemon.log)" >&2
  exit 1
}

stop_daemon() {
  client '{"op":"shutdown"}' >/dev/null
  wait "${daemon_pid}" 2>/dev/null
  daemon_pid=0
}

client() {
  "${CLI}" client --port-file "${port_file}" --timeout 120 --request "$1"
}

# json_field <json-line> <key>: first raw value of "key" (quotes kept).
json_field() {
  sed -n 's/.*"'"$2"'":\([^,}]*\).*/\1/p' <<<"$1"
}

# Long enough to be killed mid-flight, deterministic across runs. With
# --max-running 1 the second submit queues behind the first, so SIGKILL
# right after the submit burst always interrupts at least one session.
submit_a='{"op":"submit","kind":"tune","stencil":"j3d7pt","seed":11,"budget_s":600,"universe":20000,"fault_rate":0.2}'
submit_b='{"op":"submit","kind":"tune","stencil":"j3d27pt","seed":12,"budget_s":600,"universe":20000,"fault_rate":0.2}'

# --------------------------------------------------------------------------
echo "== phase 1: SIGKILL mid-tune, restart, bit-identical results"
# Warm start stays off in this phase: a warm hint depends on what finished
# before the kill, which is exactly the nondeterminism the bit-identity
# comparison must not see. --checkpoint-sync every makes the journal
# durable per append, so the restart replays it instead of recomputing.
ref_flags=(--no-warm-start --checkpoint-sync every --max-running 1)

start_daemon "${WORK}/ref" "${ref_flags[@]}"
ref_a_id=$(json_field "$(client "${submit_a}")" id)
ref_b_id=$(json_field "$(client "${submit_b}")" id)
client "{\"op\":\"result\",\"id\":${ref_a_id},\"timeout_s\":120}" \
  >"${WORK}/ref_a.json"
client "{\"op\":\"result\",\"id\":${ref_b_id},\"timeout_s\":120}" \
  >"${WORK}/ref_b.json"
stop_daemon
grep -q '"state":"done"' "${WORK}/ref_a.json" || fail "reference A not done"
grep -q '"state":"done"' "${WORK}/ref_b.json" || fail "reference B not done"

start_daemon "${WORK}/crash" "${ref_flags[@]}"
a_id=$(json_field "$(client "${submit_a}")" id)
b_id=$(json_field "$(client "${submit_b}")" id)
[[ "${a_id}" == "${ref_a_id}" && "${b_id}" == "${ref_b_id}" ]] ||
  fail "session ids diverged from reference (${a_id},${b_id})"
kill -9 "${daemon_pid}"
wait "${daemon_pid}" 2>/dev/null
daemon_pid=0
# The kill must have landed mid-flight: B was queued behind A, so its
# result cannot have been published yet.
[[ -f "${WORK}/crash/sessions/${b_id}/result.json" ]] &&
  fail "session B already finished before SIGKILL — kill landed too late"

start_daemon "${WORK}/crash" "${ref_flags[@]}"
stats=$(client '{"op":"stats"}')
adopted=$(json_field "${stats}" adopted)
[[ "${adopted:-0}" -ge 1 ]] || fail "restart adopted no sessions (${stats})"
client "{\"op\":\"result\",\"id\":${a_id},\"timeout_s\":120}" \
  >"${WORK}/crash_a.json"
client "{\"op\":\"result\",\"id\":${b_id},\"timeout_s\":120}" \
  >"${WORK}/crash_b.json"
stop_daemon
cmp -s "${WORK}/ref_a.json" "${WORK}/crash_a.json" ||
  fail "session A result not byte-identical after recovery"
cmp -s "${WORK}/ref_b.json" "${WORK}/crash_b.json" ||
  fail "session B result not byte-identical after recovery"

# --------------------------------------------------------------------------
echo "== phase 2: overload sheds typed rejections, accepted sessions finish"
start_daemon "${WORK}/overload" --no-warm-start --max-running 1 \
  --max-queued 2 --tenant-quota 16
accepted_ids=()
rejected=0
for seed in 41 42 43 44 45; do
  line=$(client "{\"op\":\"submit\",\"kind\":\"tune\",\"stencil\":\"j3d7pt\",\"seed\":${seed},\"budget_s\":600,\"universe\":20000}")
  case "$(json_field "${line}" type)" in
    '"accepted"')
      accepted_ids+=("$(json_field "${line}" id)")
      ;;
    '"rejected"')
      rejected=$((rejected + 1))
      [[ "$(json_field "${line}" reason)" == '"queue_full"' ]] ||
        fail "rejection reason not queue_full: ${line}"
      retry=$(json_field "${line}" retry_after_s)
      awk -v r="${retry:-0}" 'BEGIN { exit !(r > 0) }' ||
        fail "rejected without positive retry_after_s: ${line}"
      ;;
    *)
      fail "submit answered neither accepted nor rejected: ${line}"
      ;;
  esac
done
[[ ${rejected} -ge 1 ]] || fail "burst of 5 onto a 1+2 daemon shed nothing"
[[ ${#accepted_ids[@]} -ge 3 ]] ||
  fail "expected >=3 accepted sessions, got ${#accepted_ids[@]}"
for id in "${accepted_ids[@]}"; do
  line=$(client "{\"op\":\"result\",\"id\":${id},\"timeout_s\":120}")
  grep -q '"state":"done"' <<<"${line}" ||
    fail "accepted session ${id} did not finish: ${line}"
done
stats=$(client '{"op":"stats"}')
[[ "$(json_field "${stats}" accepted_total)" == "${#accepted_ids[@]}" ]] ||
  fail "accepted_total disagrees with client count (${stats})"
[[ "$(json_field "${stats}" rejected_total)" == "${rejected}" ]] ||
  fail "rejected_total disagrees with client count (${stats})"
stop_daemon

# --------------------------------------------------------------------------
echo "== phase 3: virtual-clock deadline expires the session, not the daemon"
start_daemon "${WORK}/deadline" --no-warm-start
line=$(client '{"op":"submit","kind":"tune","stencil":"helmholtz","seed":20,"budget_s":600,"deadline_s":0.05,"universe":20000}')
id=$(json_field "${line}" id)
[[ -n "${id}" ]] || fail "deadline submit rejected: ${line}"
if [[ -n "${id}" ]]; then
  line=$(client "{\"op\":\"result\",\"id\":${id},\"timeout_s\":120}")
  grep -q '"state":"expired"' <<<"${line}" ||
    fail "deadlined session not expired: ${line}"
fi
# The daemon itself must still be healthy after expiring a session.
line=$(client "${submit_a}")
id=$(json_field "${line}" id)
[[ -n "${id}" ]] || fail "daemon unhealthy after deadline expiry: ${line}"
client "{\"op\":\"result\",\"id\":${id},\"timeout_s\":120}" |
  grep -q '"state":"done"' || fail "post-deadline session did not finish"
stop_daemon

if [[ ${status} -eq 0 ]]; then
  echo "serve_smoke: OK"
else
  echo "serve_smoke: FAILED (daemon log: ${WORK}/daemon.log)" >&2
fi
exit "${status}"
